#include "transport/tcp.hpp"

#include <algorithm>

#include "obs/tracer.hpp"

namespace hvc::transport {

using net::PacketPtr;
using sim::Duration;
using sim::Time;

FlowPair make_flow_pair() {
  return {net::next_flow_id(), net::next_flow_id()};
}

// ---------------------------------------------------------------- sender

TcpSender::TcpSender(net::Node& local, FlowPair flows, CcaPtr cca,
                     TcpConfig cfg)
    : local_(local),
      sim_(local.simulator()),
      flows_(flows),
      cca_(std::move(cca)),
      cfg_(cfg),
      rto_timer_(sim_, [this] { on_rto(); }),
      pace_timer_(sim_, [this] { try_send(); }) {
  auto& reg = obs::MetricsRegistry::current();
  m_packets_sent_ = &reg.counter("transport.tcp.packets_sent");
  m_retransmissions_ = &reg.counter("transport.tcp.retransmissions");
  m_rto_count_ = &reg.counter("transport.tcp.rto_count");
  m_spurious_ = &reg.counter("transport.tcp.spurious_loss_marks");
  const std::string tprefix =
      "transport.tcp.flow" + std::to_string(flows_.data) + ".";
  probes_.add("transport", tprefix + "cwnd_bytes", [this] {
    return static_cast<double>(cca_->cwnd_bytes());
  });
  probes_.add("transport", tprefix + "inflight_bytes",
              [this] { return static_cast<double>(in_flight_); });
  probes_.add("transport", tprefix + "srtt_ms",
              [this] { return sim::to_millis(rtt_.srtt()); });
  probes_.add("transport", tprefix + "pacing_mbps",
              [this] { return cca_->pacing_rate_bps() / 1e6; });
  local_.register_flow(flows_.ack, [this](PacketPtr p) {
    on_ack_packet(p);
  });
}

TcpSender::~TcpSender() {
  // Fold the stats struct into the registry counters on retirement; the
  // send path itself never touches the registry.
  m_packets_sent_->inc(stats_.packets_sent);
  m_retransmissions_->inc(stats_.retransmissions);
  m_rto_count_->inc(stats_.rto_count);
  m_spurious_->inc(stats_.spurious_loss_marks);
  local_.unregister_flow(flows_.ack);
}

void TcpSender::write(std::int64_t bytes) {
  if (bytes <= 0) return;
  message_spans_.push_back(StreamMessage{0, bytes, 0, sim_.now()});
  stream_end_ += static_cast<std::uint64_t>(bytes);
  try_send();
}

std::uint64_t TcpSender::write_message(std::int64_t bytes,
                                       std::uint8_t priority) {
  if (bytes <= 0) return 0;
  const std::uint64_t id = next_message_id_++;
  message_spans_.push_back(StreamMessage{id, bytes, priority, sim_.now()});
  stream_end_ += static_cast<std::uint64_t>(bytes);
  try_send();
  return id;
}

std::optional<std::uint64_t> TcpSender::next_fresh_span(
    std::uint32_t* len, net::AppHeader* app) {
  if (next_seq_ >= stream_end_ || message_spans_.empty()) {
    return std::nullopt;
  }
  const StreamMessage& span = message_spans_.front();
  const std::uint64_t span_end =
      span_cursor_ + static_cast<std::uint64_t>(span.bytes);
  const std::uint64_t remaining_in_span = span_end - next_seq_;
  *len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      remaining_in_span, static_cast<std::uint64_t>(net::kMaxPayload)));

  *app = net::AppHeader{};
  if (cfg_.annotate_app_info && span.id != 0) {
    app->present = true;
    app->message_id = span.id;
    app->message_bytes = static_cast<std::uint32_t>(span.bytes);
    app->offset = static_cast<std::uint32_t>(next_seq_ - span_cursor_);
    app->priority = span.priority;
    app->message_end = next_seq_ + *len == span_end;
  }

  const std::uint64_t seq = next_seq_;
  next_seq_ += *len;
  if (next_seq_ >= span_end) {
    span_cursor_ = span_end;
    message_spans_.pop_front();
  }
  return seq;
}

void TcpSender::try_send() {
  const std::int64_t cwnd = cca_->cwnd_bytes();
  const double pacing = cca_->pacing_rate_bps();

  while (true) {
    if (in_flight_ >= cwnd) break;

    if (pacing > 0.0) {
      const Time now = sim_.now();
      if (now < next_send_time_) {
        pace_timer_.arm_at(next_send_time_);
        break;
      }
    }

    // Retransmissions take precedence (oldest first).
    Segment* to_retx = nullptr;
    for (auto& [seq, seg] : outstanding_) {
      if (seg.lost && !seg.sacked) {
        to_retx = &seg;
        break;
      }
    }

    if (to_retx != nullptr) {
      send_segment(*to_retx, /*retransmission=*/true);
    } else {
      std::uint32_t len = 0;
      net::AppHeader app;
      const auto seq = next_fresh_span(&len, &app);
      if (!seq.has_value()) break;  // nothing to send (app-limited)
      Segment seg;
      seg.seq = *seq;
      seg.len = len;
      seg.app = app;
      auto [it, inserted] = outstanding_.emplace(*seq, seg);
      send_segment(it->second, /*retransmission=*/false);
      // App-limited marker: the stream drained right after this send.
      if (next_seq_ >= stream_end_) it->second.app_limited = true;
    }
  }
}

void TcpSender::send_segment(Segment& seg, bool retransmission) {
  const Time now = sim_.now();
  if (delivered_ts_ == 0) delivered_ts_ = now;

  auto p = net::make_packet();
  p->flow = flows_.data;
  p->type = net::PacketType::kData;
  p->size_bytes = seg.len + net::kHeaderBytes;
  p->tp.seq = seg.seq;
  p->tp.len = seg.len;
  p->tp.ts = now;
  p->app = seg.app;
  p->flow_priority = cfg_.flow_priority;

  if (retransmission) {
    if (auto* tr = obs::PacketTracer::active()) {
      // aux = how long the lost copy waited before this retransmission
      // (the tracer's retx-wait component of one-way-delay decomposition);
      // must be read before last_sent is overwritten below.
      tr->record(obs::EventKind::kRetx, now, p->id, p->flow,
                 obs::kNoChannel, obs::kNoDirection, seg.len,
                 static_cast<std::uint8_t>(seg.tx_count),
                 now - seg.last_sent);
    }
  }

  if (seg.first_sent == 0) seg.first_sent = now;
  seg.last_sent = now;
  ++seg.tx_count;
  seg.lost = false;
  seg.delivered_snapshot = delivered_bytes_;
  seg.delivered_ts_snapshot = delivered_ts_;

  if (!seg.in_flight) {
    seg.in_flight = true;
    in_flight_ += seg.len;
  }
  ++stats_.packets_sent;
  stats_.bytes_sent += seg.len;
  if (retransmission) {
    ++stats_.retransmissions;
  }

  cca_->on_packet_sent(now, seg.len, in_flight_);

  const double pacing = cca_->pacing_rate_bps();
  if (pacing > 0.0) {
    const Duration gap =
        sim::transmission_time(p->size_bytes, static_cast<sim::RateBps>(
                                                  std::max(pacing, 1.0)));
    next_send_time_ = std::max(next_send_time_, now) + gap;
  }

  local_.send(std::move(p));
  if (!rto_timer_.armed()) arm_rto();
}

Duration TcpSender::rack_window() const {
  const Duration srtt =
      rtt_.has_sample() ? rtt_.srtt() : sim::milliseconds(100);
  const Duration base = std::max<Duration>(
      static_cast<Duration>(cfg_.rack_window_frac *
                            static_cast<double>(srtt)),
      sim::milliseconds(10));
  if (!reordering_seen_) return base;
  return std::min<Duration>(base * reo_mult_, srtt);
}

void TcpSender::note_spurious_if_unretransmitted(const Segment& seg,
                                                  Time now) {
  // The segment was declared lost but its original transmission arrived:
  // the loss signal was spurious reordering. Widen the RACK window and
  // let the CCA undo its reduction (rate-limited to once per srtt).
  if (!seg.lost || seg.tx_count != 1) return;
  ++stats_.spurious_loss_marks;
  log_.logf(sim::LogLevel::kDebug,
            "spurious loss mark disproved for seq %llu (reo_mult %d)",
            static_cast<unsigned long long>(seg.seq), reo_mult_);
  reordering_seen_ = true;
  if (reo_mult_ < cfg_.rack_max_mult) ++reo_mult_;
  const Duration srtt =
      rtt_.has_sample() ? rtt_.srtt() : sim::milliseconds(100);
  if (now - last_undo_ >= srtt) {
    last_undo_ = now;
    cca_->on_spurious_loss(now);
  }
}

void TcpSender::note_reordering(const Segment& seg) {
  // A segment delivered on its first transmission below an already-SACKed
  // block proves the path reorders; widen the RACK window.
  if (seg.tx_count == 1 && seg.seq + seg.len < highest_sacked_end_) {
    reordering_seen_ = true;
    if (reo_mult_ < cfg_.rack_max_mult) ++reo_mult_;
  }
}

void TcpSender::detect_losses_rack(Time rack_ts) {
  if (rack_ts <= 0) return;
  std::int64_t lost_bytes = 0;
  const Duration window = rack_window();
  for (auto& [seq, seg] : outstanding_) {
    if (seg.sacked || seg.lost) continue;
    if (seg.last_sent + window < rack_ts) {
      seg.lost = true;
      if (seg.in_flight) {
        seg.in_flight = false;
        in_flight_ -= seg.len;
      }
      lost_bytes += seg.len;
    }
  }
  if (lost_bytes > 0) {
    cca_->on_loss({sim_.now(), lost_bytes, in_flight_, false});
  }
}

void TcpSender::on_ack_packet(const PacketPtr& p) {
  const Time now = sim_.now();
  const auto& tp = p->tp;
  if (!tp.has_ack) return;

  // RTT sample from the echoed timestamp (Karn-safe: the echo identifies
  // the actual transmission that reached the receiver).
  Duration rtt_sample = 0;
  if (tp.ts_echo > 0) {
    rtt_sample = now - tp.ts_echo;
    rtt_.add_sample(rtt_sample);
    stats_.rtt_samples_ms.add(now, sim::to_millis(rtt_sample));
  }

  std::int64_t newly_delivered = 0;
  Time rack_ts = 0;
  bool any_new_sack = false;
  std::optional<Segment> rate_sample_seg;

  // Cumulative ack.
  if (tp.ack > cum_acked_) {
    while (!outstanding_.empty()) {
      auto it = outstanding_.begin();
      Segment& seg = it->second;
      if (seg.seq + seg.len > tp.ack) break;
      if (seg.in_flight) {
        seg.in_flight = false;
        in_flight_ -= seg.len;
      }
      if (!seg.sacked) {
        newly_delivered += seg.len;
        note_reordering(seg);
        note_spurious_if_unretransmitted(seg, now);
      }
      rack_ts = std::max(rack_ts, seg.last_sent);
      if (!rate_sample_seg || seg.seq > rate_sample_seg->seq) {
        rate_sample_seg = seg;
      }
      outstanding_.erase(it);
    }
    cum_acked_ = tp.ack;
    rto_backoff_ = 0;
    stats_.bytes_acked = static_cast<std::int64_t>(cum_acked_);
    stats_.acked_bytes_series.add(now,
                                  static_cast<double>(cum_acked_));
  }

  // Selective acks.
  for (const auto& [first, last] : tp.sack) {
    auto it = outstanding_.lower_bound(first);
    for (; it != outstanding_.end() && it->second.seq + it->second.len <= last;
         ++it) {
      Segment& seg = it->second;
      if (seg.sacked) continue;
      seg.sacked = true;
      note_spurious_if_unretransmitted(seg, now);
      seg.lost = false;  // it arrived; no retransmission needed
      note_reordering(seg);
      if (seg.seq + seg.len > highest_sacked_end_) {
        highest_sacked_end_ = seg.seq + seg.len;
      }
      any_new_sack = true;
      if (seg.in_flight) {
        seg.in_flight = false;
        in_flight_ -= seg.len;
      }
      newly_delivered += seg.len;
      rack_ts = std::max(rack_ts, seg.last_sent);
      if (!rate_sample_seg || seg.seq > rate_sample_seg->seq) {
        rate_sample_seg = seg;
      }
    }
  }

  if (newly_delivered > 0) {
    delivered_bytes_ += newly_delivered;
    delivered_ts_ = now;
  }

  // Dupack fallback (matters only if SACK blocks were dropped/limited).
  if (tp.ack == last_cum_ack_ && !any_new_sack && newly_delivered == 0 &&
      tp.ack < stream_end_) {
    if (++dupacks_ >= cfg_.dupack_threshold && !outstanding_.empty()) {
      Segment& head = outstanding_.begin()->second;
      if (!head.lost && !head.sacked) {
        head.lost = true;
        if (head.in_flight) {
          head.in_flight = false;
          in_flight_ -= head.len;
        }
        cca_->on_loss({now, head.len, in_flight_, false});
      }
      dupacks_ = 0;
    }
  } else if (tp.ack != last_cum_ack_) {
    last_cum_ack_ = tp.ack;
    dupacks_ = 0;
  }

  // Round trips: a round ends when data sent at its start is all acked.
  if (cum_acked_ >= round_end_seq_) {
    ++round_trips_;
    round_end_seq_ = next_seq_;
  }

  detect_losses_rack(rack_ts);

  // Delivery-rate sample from the most recent segment this ack covered.
  double rate_bps = 0.0;
  bool app_limited = false;
  if (rate_sample_seg && newly_delivered > 0) {
    const Duration interval = now - rate_sample_seg->delivered_ts_snapshot;
    if (interval > 0) {
      rate_bps = static_cast<double>(delivered_bytes_ -
                                     rate_sample_seg->delivered_snapshot) *
                 8.0 / sim::to_seconds(interval);
    }
    app_limited = rate_sample_seg->app_limited;
  }

  AckEvent ev;
  ev.now = now;
  ev.rtt = rtt_sample;
  ev.acked_bytes = newly_delivered;
  ev.bytes_in_flight = in_flight_;
  ev.delivery_rate_bps = rate_bps;
  ev.app_limited = app_limited;
  ev.channel = tp.channel_echo;
  ev.round_trips = round_trips_;
  cca_->on_ack(ev);

  if (on_acked_ && newly_delivered > 0) {
    on_acked_(static_cast<std::int64_t>(cum_acked_));
  }

  if (outstanding_.empty() && next_seq_ >= stream_end_) {
    rto_timer_.cancel();
  } else {
    arm_rto();
  }
  try_send();
}

void TcpSender::arm_rto() {
  Duration rto = rtt_.rto();
  for (int i = 0; i < rto_backoff_ && rto < cfg_.max_rto; ++i) rto *= 2;
  rto_timer_.arm(std::min(rto, cfg_.max_rto));
}

void TcpSender::on_rto() {
  if (outstanding_.empty()) return;
  ++stats_.rto_count;
  ++rto_backoff_;
  log_.logf(sim::LogLevel::kDebug,
            "RTO #%lld fired (backoff %d, %zu segments outstanding)",
            static_cast<long long>(stats_.rto_count), rto_backoff_,
            outstanding_.size());

  // A second (or later) consecutive RTO with zero forward progress means
  // the path is likely in a blackout, not congested: re-marking and
  // re-sending the window each backoff interval would only pile stale
  // copies into the dead link's queue (all wasted bytes on recovery).
  // Probe with the single oldest unacked segment instead — the bounded
  // exponential backoff (arm_rto, cfg_.max_rto) paces the probes, and the
  // first ack through rebuilds the ACK clock and normal recovery.
  if (rto_backoff_ >= 2) {
    for (auto& [seq, seg] : outstanding_) {
      if (seg.sacked) continue;
      send_segment(seg, /*retransmission=*/true);
      break;
    }
    dupacks_ = 0;
    arm_rto();
    return;
  }

  // RTO means the ACK clock died: treat everything in flight as lost so
  // recovery can proceed (otherwise dead in-flight bytes pin the window
  // shut and the retransmission never leaves).
  std::int64_t lost_bytes = 0;
  for (auto& [seq, seg] : outstanding_) {
    if (seg.sacked || seg.lost) continue;
    seg.lost = true;
    if (seg.in_flight) {
      seg.in_flight = false;
      in_flight_ -= seg.len;
    }
    lost_bytes += seg.len;
  }
  dupacks_ = 0;
  cca_->on_loss({sim_.now(), lost_bytes, in_flight_, true});
  arm_rto();
  try_send();
}

double TcpSender::goodput_bps(Time from, Time to) const {
  if (to <= from) return 0.0;
  double at_from = 0.0;
  double at_to = 0.0;
  for (const auto& pt : stats_.acked_bytes_series.points()) {
    if (pt.t <= from) at_from = pt.value;
    if (pt.t <= to) at_to = pt.value;
  }
  return (at_to - at_from) * 8.0 / sim::to_seconds(to - from);
}

// -------------------------------------------------------------- receiver

TcpReceiver::TcpReceiver(net::Node& local, FlowPair flows, TcpConfig cfg)
    : local_(local),
      sim_(local.simulator()),
      flows_(flows),
      cfg_(cfg),
      delack_timer_(sim_, [this] {
        if (pending_trigger_) {
          send_ack(pending_trigger_);
          pending_trigger_ = nullptr;
          unacked_count_ = 0;
        }
      }) {
  local_.register_flow(flows_.data, [this](PacketPtr p) {
    on_data_packet(p);
  });
}

TcpReceiver::~TcpReceiver() { local_.unregister_flow(flows_.data); }

void TcpReceiver::on_data_packet(const PacketPtr& p) {
  const Time now = sim_.now();
  ++stats_.packets_received;
  const std::uint64_t first = p->tp.seq;
  const std::uint64_t last = first + p->tp.len;

  // Compute how many genuinely new bytes this packet contributes.
  std::int64_t added = 0;
  if (last <= cum_) {
    ++stats_.duplicate_packets;
  } else {
    std::uint64_t lo = std::max(first, cum_);
    // Subtract overlap with existing out-of-order blocks.
    added = static_cast<std::int64_t>(last - lo);
    for (const auto& [bf, bl] : ooo_) {
      const std::uint64_t of = std::max(lo, bf);
      const std::uint64_t ol = std::min(last, bl);
      if (ol > of) added -= static_cast<std::int64_t>(ol - of);
    }
    if (added <= 0) {
      ++stats_.duplicate_packets;
      added = 0;
    }
  }

  // Merge [first, last) into the block map.
  if (last > cum_) {
    std::uint64_t mf = std::max(first, cum_);
    std::uint64_t ml = last;
    auto it = ooo_.lower_bound(mf);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= mf) {
        mf = prev->first;
        ml = std::max(ml, prev->second);
        it = ooo_.erase(prev);
      }
    }
    while (it != ooo_.end() && it->first <= ml) {
      ml = std::max(ml, it->second);
      it = ooo_.erase(it);
    }
    ooo_[mf] = ml;

    // Advance the cumulative point over now-contiguous blocks.
    const std::uint64_t old_cum = cum_;
    auto head = ooo_.begin();
    while (head != ooo_.end() && head->first <= cum_) {
      cum_ = std::max(cum_, head->second);
      head = ooo_.erase(head);
    }
    if (on_data_ && cum_ > old_cum) {
      on_data_(static_cast<std::int64_t>(cum_ - old_cum));
    }
  }

  // Message completion tracking (cross-layer annotation).
  if (p->app.present && added > 0) {
    auto& mp = messages_[p->app.message_id];
    if (mp.header.message_bytes == 0) mp.header = p->app;
    mp.received += added;
    if (mp.received >=
        static_cast<std::int64_t>(mp.header.message_bytes)) {
      if (on_message_) on_message_(mp.header, now);
      messages_.erase(p->app.message_id);
    }
  }

  // ACK generation.
  if (cfg_.delayed_ack) {
    pending_trigger_ = p;
    if (++unacked_count_ >= 2) {
      send_ack(pending_trigger_);
      pending_trigger_ = nullptr;
      unacked_count_ = 0;
      delack_timer_.cancel();
    } else if (!delack_timer_.armed()) {
      delack_timer_.arm(cfg_.delayed_ack_timeout);
    }
  } else {
    send_ack(p);
  }
}

void TcpReceiver::send_ack(const PacketPtr& trigger) {
  auto ack = net::make_ack(flows_.ack, cum_, trigger->tp.ts);
  ack->tp.channel_echo = trigger->channel;
  ack->flow_priority = cfg_.flow_priority;

  // Report the highest out-of-order blocks (most useful for RACK).
  int n = 0;
  for (auto it = ooo_.rbegin(); it != ooo_.rend() && n < cfg_.max_sack_blocks;
       ++it, ++n) {
    ack->tp.sack.emplace_back(it->first, it->second);
  }

  ++stats_.acks_sent;
  local_.send(std::move(ack));
}

}  // namespace hvc::transport
