file(REMOVE_RECURSE
  "libhvc_channel.a"
)
