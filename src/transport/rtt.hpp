// RFC 6298-style RTT estimation and retransmission-timeout computation.
#pragma once

#include <algorithm>

#include "sim/units.hpp"

namespace hvc::transport {

class RttEstimator {
 public:
  void add_sample(sim::Duration rtt) {
    if (rtt <= 0) return;
    latest_ = rtt;
    min_rtt_ = has_sample_ ? std::min(min_rtt_, rtt) : rtt;
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
    } else {
      const sim::Duration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = (3 * rttvar_ + err) / 4;       // beta = 1/4
      srtt_ = (7 * srtt_ + rtt) / 8;           // alpha = 1/8
    }
  }

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] sim::Duration srtt() const { return srtt_; }
  [[nodiscard]] sim::Duration rttvar() const { return rttvar_; }
  [[nodiscard]] sim::Duration latest() const { return latest_; }
  [[nodiscard]] sim::Duration min_rtt() const { return min_rtt_; }

  [[nodiscard]] sim::Duration rto() const {
    if (!has_sample_) return sim::seconds(1);
    const sim::Duration raw = srtt_ + std::max(granularity_, 4 * rttvar_);
    return std::clamp(raw, min_rto_, max_rto_);
  }

  void set_min_rto(sim::Duration d) { min_rto_ = d; }

 private:
  bool has_sample_ = false;
  sim::Duration srtt_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration latest_ = 0;
  sim::Duration min_rtt_ = 0;
  sim::Duration granularity_ = sim::milliseconds(1);
  sim::Duration min_rto_ = sim::milliseconds(200);
  sim::Duration max_rto_ = sim::seconds(60);
};

}  // namespace hvc::transport
