// 802.1Qbv-style time-aware gating over a shared Wi-Fi medium (§2.2).
//
// A gating schedule divides a repeating cycle into a protected TSN window
// (contention-free, deterministic service for time-sensitive traffic) and
// a best-effort remainder, separated by guard bands during which nothing
// transmits (the medium must be quiet before the protected window opens).
// The paper's §2.2 concern — "other users bear the cost of one's use of
// the low latency service" and "loses multiplexing gains with non-TSN
// traffic having to wait" — falls directly out of this model: best-effort
// capacity shrinks by the window share *plus* the guard overhead.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace hvc::trace {

struct TsnSchedule {
  /// Full gating cycle (802.1Qbv cycle time).
  sim::Duration cycle = sim::milliseconds(10);
  /// Protected window for TSN traffic at the start of each cycle.
  sim::Duration tsn_window = sim::milliseconds(2);
  /// Guard band before the protected window (medium quiescence).
  sim::Duration guard = sim::microseconds(200);
  /// Raw medium rate shared by both classes.
  sim::RateBps medium_rate = sim::mbps(120);
  /// Delivery granularity inside the TSN window (small TSN frames).
  std::int64_t tsn_mtu = 250;
  std::int64_t best_effort_mtu = 1500;

  [[nodiscard]] double tsn_share() const {
    return static_cast<double>(tsn_window) / static_cast<double>(cycle);
  }
  /// Fraction of the medium lost to guard bands alone.
  [[nodiscard]] double guard_overhead() const {
    return static_cast<double>(guard) / static_cast<double>(cycle);
  }
};

/// Capacity trace for the protected TSN slice: full medium rate inside
/// each [guard end, window end) interval, nothing elsewhere.
CapacityTrace tsn_slice_trace(const TsnSchedule& s);

/// Capacity trace for the best-effort remainder: full medium rate outside
/// the window and guard band.
CapacityTrace best_effort_slice_trace(const TsnSchedule& s);

}  // namespace hvc::trace
