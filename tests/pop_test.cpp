// Tests for the city-cell population engine (src/pop) and its src/exp
// integration: determinism of run_city, O(1) telemetry memory vs
// population size, churn accounting, URLLC admission behaviour, and the
// sweep byte-identity contract (-j1 == -jN, shards merge losslessly).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/results.hpp"
#include "exp/spec.hpp"
#include "exp/sweep.hpp"
#include "pop/engine.hpp"
#include "pop/spec.hpp"

namespace hvc {
namespace {

pop::CityConfig small_city(std::int64_t users, double duration_s = 10.0) {
  pop::CityConfig cfg;
  cfg.population.users = users;
  cfg.population.churn.arrival_rate_per_s = 1.0;
  cfg.population.churn.mean_session_s = 20.0;
  cfg.cell.embb_rate_bps = 100e6;
  cfg.cell.urllc_rate_bps = 5e6;
  cfg.seed = 7;
  cfg.duration = sim::seconds(static_cast<std::int64_t>(duration_s));
  return cfg;
}

TEST(CityEngine, RunIsDeterministic) {
  const auto cfg = small_city(300);
  const pop::CityResult a = pop::run_city(cfg);
  const pop::CityResult b = pop::run_city(cfg);
  EXPECT_EQ(a.cohorts.to_json(), b.cohorts.to_json());
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.bg_transfers, b.bg_transfers);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.urllc_admitted, b.urllc_admitted);
  EXPECT_EQ(a.urllc_spilled, b.urllc_spilled);
  EXPECT_EQ(a.events, b.events);
}

TEST(CityEngine, SeedChangesOutcome) {
  auto cfg = small_city(300);
  const pop::CityResult a = pop::run_city(cfg);
  cfg.seed = 8;
  const pop::CityResult b = pop::run_city(cfg);
  EXPECT_NE(a.cohorts.to_json(), b.cohorts.to_json());
}

TEST(CityEngine, TelemetryMemoryIndependentOfPopulation) {
  // The O(bins) claim end to end: a 10x larger population produces the
  // same accumulator footprint (and far more samples).
  const pop::CityResult small = pop::run_city(small_city(300));
  const pop::CityResult large = pop::run_city(small_city(3000));
  EXPECT_EQ(small.cohorts.memory_bytes(), large.cohorts.memory_bytes());
  EXPECT_GT(large.peak_active, small.peak_active);
}

TEST(CityEngine, ChurnProducesArrivalsAndDepartures) {
  const pop::CityResult r = pop::run_city(small_city(200, 20.0));
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_GT(r.departures, 0u);
  EXPECT_GE(r.peak_active, 200u);
  // All three archetypes did work.
  EXPECT_GT(r.pages, 0u);
  EXPECT_GT(r.chunks, 0u);
  EXPECT_GT(r.bg_transfers, 0u);
}

TEST(CityEngine, UrllcAdmissionExercised) {
  const pop::CityResult r = pop::run_city(small_city(500));
  // The steering rule must have a live operating point: some small
  // objects admitted, and under load some spilled back to eMBB.
  EXPECT_GT(r.urllc_admitted, 0u);
  EXPECT_GT(r.urllc_spilled, 0u);
}

TEST(CityEngine, NoUrllcPoolMeansNoAdmissions) {
  auto cfg = small_city(300);
  cfg.cell.has_urllc = false;
  const pop::CityResult r = pop::run_city(cfg);
  EXPECT_EQ(r.urllc_admitted, 0u);
  EXPECT_GT(r.pages, 0u);
}

TEST(PopulationSpec, ValidateRejectsBadValues) {
  pop::PopulationSpec p;
  p.users = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.mix.web = p.mix.video = p.mix.background = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.web.min_levels = 3;
  p.web.max_levels = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.validate();  // defaults are valid
}

TEST(CitySpec, ParseRejectsBadJson) {
  const std::string good = R"({
    "name": "t", "workload": "city", "duration_s": 1, "seed": 1,
    "channels": [{"type": "embb", "rate_mbps": 50, "rtt_ms": 40}],
    "city": {"users": 100}
  })";
  EXPECT_NO_THROW(exp::ScenarioSpec::from_json_text(good));

  // Unknown key inside the city block.
  const std::string bad_key = R"({
    "name": "t", "workload": "city", "duration_s": 1, "seed": 1,
    "channels": [{"type": "embb", "rate_mbps": 50, "rtt_ms": 40}],
    "city": {"users": 100, "bogus": 1}
  })";
  EXPECT_THROW(exp::ScenarioSpec::from_json_text(bad_key), exp::SpecError);

  // Out-of-range population.
  const std::string bad_users = R"({
    "name": "t", "workload": "city", "duration_s": 1, "seed": 1,
    "channels": [{"type": "embb", "rate_mbps": 50, "rtt_ms": 40}],
    "city": {"users": -5}
  })";
  EXPECT_THROW(exp::ScenarioSpec::from_json_text(bad_users), exp::SpecError);
}

exp::SweepSpec city_sweep() {
  return exp::SweepSpec::from_json_text(R"({
    "name": "pop_test_sweep",
    "base": {
      "name": "pop_test_sweep",
      "workload": "city",
      "duration_s": 5,
      "seed": 3,
      "channels": [
        {"type": "embb", "rate_mbps": 100, "rtt_ms": 50},
        {"type": "urllc", "rate_mbps": 5, "rtt_ms": 5}
      ],
      "city": {
        "users": 200,
        "churn": {"arrival_rate_per_s": 1, "mean_session_s": 20}
      }
    },
    "axes": {
      "city.users": [200, 400],
      "policy": ["embb-only", "dchannel"]
    }
  })");
}

TEST(CitySweep, ByteIdenticalAcrossThreadCounts) {
  const auto sweep = city_sweep();
  const auto serial = exp::run_sweep(sweep, 1);
  const auto parallel = exp::run_sweep(sweep, 4);
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_EQ(exp::to_jsonl(serial), exp::to_jsonl(parallel));
  EXPECT_EQ(exp::to_csv(serial), exp::to_csv(parallel));
  for (const auto& r : serial) EXPECT_EQ(r.error, "") << r.index;
}

TEST(CitySweep, ShardsMergeToUnshardedBytes) {
  const auto sweep = city_sweep();
  const auto whole = exp::run_sweep(sweep, 2);

  std::vector<exp::RunResult> merged;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    auto part = exp::run_sweep_shard(sweep, 2, shard, 3);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const exp::RunResult& a, const exp::RunResult& b) {
              return a.index < b.index;
            });
  EXPECT_EQ(exp::to_jsonl(merged), exp::to_jsonl(whole));
  EXPECT_EQ(exp::to_csv(merged), exp::to_csv(whole));
}

TEST(CitySweep, BadShardThrows) {
  const auto sweep = city_sweep();
  EXPECT_THROW(exp::run_sweep_shard(sweep, 1, 3, 3), exp::SpecError);
  EXPECT_THROW(exp::run_sweep_shard(sweep, 1, 0, 0), exp::SpecError);
}

TEST(CitySweep, PolicyAxisChangesSteering) {
  const auto sweep = city_sweep();
  const auto runs = exp::run_sweep(sweep, 4);
  ASSERT_EQ(runs.size(), 4u);
  // Axis order: city.users (200, 400) x policy (dchannel, embb-only)?
  // Don't assume ordering — find by params instead.
  for (const auto& r : runs) {
    const auto policy = r.params.at("policy");
    const double admitted = r.metrics.at("city.urllc_admitted");
    if (policy == "embb-only") {
      EXPECT_EQ(admitted, 0.0) << "run " << r.index;
    } else {
      EXPECT_GT(admitted, 0.0) << "run " << r.index;
    }
    EXPECT_GT(r.metrics.at("city.pages"), 0.0);
    EXPECT_GT(r.metrics.at("city.stats_bytes"), 0.0);
  }
}

}  // namespace
}  // namespace hvc
