// R10 suppression: a true taint finding carrying a justified allow on
// the sink line must not surface from lint_tree.
namespace fx10f {

void fx10f_dump() {
  std::unordered_set<int> ids;
  int last = 0;
  for (const auto& id : ids) {
    last = id;
  }
  // hvc-lint: allow(unordered-taint): fixture exercising suppression of the taint sink
  to_json(last);
}

}  // namespace fx10f
