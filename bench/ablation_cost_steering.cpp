// Ablation A (§3.1): the latency-vs-cost trade-off. A cISP-style priced
// microwave channel next to ordinary fiber; a stream of interactive
// messages under cost-aware steering with a swept budget. Measures the
// latency improvement purchased per dollar.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"
#include "steer/cost_aware.hpp"
#include "transport/datagram.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_cost_steering");
  bench::print_header(
      "Ablation A: cost-aware steering (fiber 40 ms + cISP 8 ms @ $0.05/MB)");
  bench::print_row({"budget $/s", "mean ms", "msg p50 ms", "msg p95 ms",
                    "$ spent", "cisp pkts"});

  for (const double budget : {0.0, 0.0005, 0.002, 0.01, 0.05}) {
    sim::Simulator s;
    steer::CostAwareConfig cc;
    cc.budget_per_second = budget;
    cc.max_budget = budget * 5;
    cc.min_ms_saved_per_dollar = 50.0;
    auto policy_up = std::make_unique<steer::CostAwarePolicy>(cc);
    auto policy_down = std::make_unique<steer::CostAwarePolicy>(cc);
    auto* down_ptr = policy_down.get();
    net::TwoHostNetwork net(s, std::move(policy_up), std::move(policy_down));
    net.add_channel(channel::fiber_profile());
    net.add_channel(channel::cisp_profile());
    net.finalize();

    const auto flow = net::next_flow_id();
    transport::DatagramSocket tx(net.server(), flow);
    transport::DatagramSocket rx(net.client(), flow);
    sim::Summary latency;
    std::map<std::uint64_t, sim::Time> sent;
    rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
      latency.add(sim::to_millis(ev.completed - ev.sent_at));
    });
    // 50 single-packet interactive messages/s for 30 s.
    for (int i = 0; i < 1500; ++i) {
      s.at(sim::milliseconds(20 * i), [&] { tx.send_message(1200, 0); });
    }
    s.run_until(sim::seconds(32));

    bench::print_row({bench::fmt(budget, 4), bench::fmt(latency.mean()),
                      bench::fmt(latency.percentile(50)),
                      bench::fmt(latency.percentile(95)),
                      bench::fmt(down_ptr->total_spent(), 4),
                      std::to_string(net.downlink_shim()
                                         .stats()
                                         .packets_per_channel[1])});
  }
  std::printf(
      "\nExpected shape: latency falls from the fiber RTT toward the cISP\n"
      "RTT as the budget allows more packets onto the priced channel.\n");
  return 0;
}
