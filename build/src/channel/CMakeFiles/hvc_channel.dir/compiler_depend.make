# Empty compiler generated dependencies file for hvc_channel.
# This may be replaced when dependencies are built.
