// The §3.2/§4 direction as a demo: an MPQUIC-style multipath transport
// with a socket-intents API steering its own segments across explicit
// paths — cloud-gaming-shaped traffic (input events + bulk video chunks).
//
//   ./build/examples/multipath_transport [minrtt|hvc]
#include <cstdio>
#include <string>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "quic/mp_connection.hpp"
#include "steer/basic_policies.hpp"

int main(int argc, char** argv) {
  using namespace hvc;
  const std::string sched = argc > 1 ? argv[1] : "hvc";

  sim::Simulator s;
  // The shim is a dumb demux: the transport picks paths (§3.2's
  // "complexity at the end host").
  net::TwoHostNetwork net(s, std::make_unique<steer::PinnedChannelPolicy>(),
                          std::make_unique<steer::PinnedChannelPolicy>());
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();

  quic::MpConfig cfg;
  cfg.scheduler = sched == "minrtt" ? quic::SchedulerKind::kMinRtt
                                    : quic::SchedulerKind::kHvcAware;
  auto conn = quic::MpConnection::make_pair(net.client(), net.server(), 2,
                                            cfg);

  // Server -> client: bulk game-video chunks at ~72 Mbps (overdriving eMBB).
  const auto video = conn.server->open_stream(quic::StreamIntents::bulk());
  // Client -> server: input events (priority 0, deadline 50 ms).
  const auto input =
      conn.client->open_stream(quic::StreamIntents::realtime(0, 50));

  sim::Summary input_latency;
  conn.server->set_on_message([&](const quic::MpEndpoint::MessageEvent& ev) {
    input_latency.add(sim::to_millis(ev.completed - ev.sent_at));
  });
  sim::Summary chunk_latency;
  conn.client->set_on_message([&](const quic::MpEndpoint::MessageEvent& ev) {
    chunk_latency.add(sim::to_millis(ev.completed - ev.sent_at));
  });

  for (int i = 0; i < 300; ++i) {  // 10 s of 30 fps chunks, ~165 kB each
    s.at(sim::milliseconds(33 * i),
         [&] { conn.server->send_message(video, 300'000); });
  }
  for (int i = 0; i < 1000; ++i) {  // 100 Hz input events, 120 B
    s.at(sim::milliseconds(10 * i),
         [&] { conn.client->send_message(input, 120); });
  }
  s.run_until(sim::seconds(12));

  std::printf("scheduler=%s\n", sched.c_str());
  std::printf("input events:  p50 %.1f ms  p95 %.1f ms  p99 %.1f ms "
              "(%zu delivered)\n",
              input_latency.percentile(50), input_latency.percentile(95),
              input_latency.percentile(99), input_latency.count());
  std::printf("video chunks:  p50 %.1f ms  p95 %.1f ms (%zu delivered)\n",
              chunk_latency.percentile(50), chunk_latency.percentile(95),
              chunk_latency.count());
  std::printf("server path use: eMBB %lld pkts, URLLC %lld pkts\n",
              static_cast<long long>(
                  conn.server->stats().packets_per_path[0]),
              static_cast<long long>(
                  conn.server->stats().packets_per_path[1]));
  std::printf("Try both: ./multipath_transport minrtt vs hvc\n");
  return 0;
}
