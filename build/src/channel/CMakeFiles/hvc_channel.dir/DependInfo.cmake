
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel.cpp" "src/channel/CMakeFiles/hvc_channel.dir/channel.cpp.o" "gcc" "src/channel/CMakeFiles/hvc_channel.dir/channel.cpp.o.d"
  "/root/repo/src/channel/link.cpp" "src/channel/CMakeFiles/hvc_channel.dir/link.cpp.o" "gcc" "src/channel/CMakeFiles/hvc_channel.dir/link.cpp.o.d"
  "/root/repo/src/channel/profile.cpp" "src/channel/CMakeFiles/hvc_channel.dir/profile.cpp.o" "gcc" "src/channel/CMakeFiles/hvc_channel.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hvc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
