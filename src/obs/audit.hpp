// Steering-decision audit log: one compact record per SteeringPolicy
// steer() call — when, which packet, what every channel looked like, what
// the policy chose and *why* (a policy-specific reason tag such as
// "dchannel:small-object" or "min-delay:tie-break").
//
// The lifecycle tracer answers "where did this packet go"; the audit log
// answers "why did the policy send it there", which is the question every
// §3 debugging session starts with. Same design contract as the tracer:
// one thread-local active() pointer checked in the shim (zero cost when
// off), a bounded ring with a true total for truncation reporting, and
// sim-time-only records so exports are byte-identical across sweep
// parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace hvc::obs {

/// The per-channel state snapshot the policy decided against.
struct AuditChannelState {
  std::int64_t queued_bytes = 0;
  double est_delay_ms = 0.0;  ///< estimated delivery delay for this packet
};

struct AuditRecord {
  sim::Time at = 0;
  std::uint64_t packet_id = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t size_bytes = 0;
  std::uint8_t packet_type = 0;    ///< net::PacketType value
  std::uint8_t flow_priority = 0;  ///< as the policy saw it (post-blanking)
  std::int16_t app_priority = -1;  ///< -1 = no app header visible
  std::uint8_t direction = 255;    ///< obs::kDirDown / kDirUp
  std::uint8_t chosen = 0;
  std::uint8_t duplicates = 0;
  /// Static-string tag set by the policy (Decision::reason); never owned.
  const char* reason = nullptr;
  std::string policy;
  std::vector<AuditChannelState> channels;
};

class SteeringAuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  SteeringAuditLog() = default;
  /// A dying log must never stay installed as the thread's active().
  ~SteeringAuditLog() {
    if (active_ == this) active_ = nullptr;
  }
  SteeringAuditLog(const SteeringAuditLog&) = delete;
  SteeringAuditLog& operator=(const SteeringAuditLog&) = delete;

  /// Hot-path accessor: nullptr unless auditing is enabled on this
  /// thread. The shim does
  ///   if (auto* al = obs::SteeringAuditLog::active()) al->record(...);
  [[nodiscard]] static SteeringAuditLog* active() { return active_; }

  /// Start recording into a fresh ring of `capacity` records and install
  /// this log as the calling thread's active().
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stop recording; retained records stay exportable.
  void disable();

  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(AuditRecord rec);

  /// Records currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// All records ever made, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::size_t capacity() const {
    return enabled_ ? ring_.size() : 0;
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<AuditRecord> snapshot() const;

  /// One JSON object per line:
  ///   {"t_us":…,"pkt":…,"flow":…,"dir":"up","type":"ack","prio":0,
  ///    "bytes":52,"policy":"dchannel","ch":1,"reason":"dchannel:control",
  ///    "channels":[{"q":2960,"d_ms":50.4},{"q":0,"d_ms":5.2}]}
  [[nodiscard]] std::string to_jsonl() const;

 private:
  friend class ScopedSteeringAuditLog;

  static thread_local SteeringAuditLog* active_;

  std::vector<AuditRecord> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::uint64_t total_ = 0;
  bool enabled_ = false;
};

/// RAII: installs a log as the calling thread's active() for the scope's
/// lifetime — if it is enabled; a disabled log masks any outer one, so
/// sweep runs never write into each other's audit trail.
class ScopedSteeringAuditLog {
 public:
  explicit ScopedSteeringAuditLog(SteeringAuditLog& log);
  ~ScopedSteeringAuditLog();
  ScopedSteeringAuditLog(const ScopedSteeringAuditLog&) = delete;
  ScopedSteeringAuditLog& operator=(const ScopedSteeringAuditLog&) = delete;

 private:
  SteeringAuditLog* prev_active_;
};

}  // namespace hvc::obs
