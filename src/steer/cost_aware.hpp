// Cost-aware steering for priced low-latency channels (§3.1's
// latency-vs-cost trade-off; think cISP [10], where the microwave path
// charges per byte).
//
// The policy buys latency only when it is cheap enough: a packet is
// steered to a priced channel iff the estimated time saving per dollar
// exceeds `min_ms_saved_per_dollar` AND the running spend stays within a
// token-bucket budget (dollars accrue at `budget_per_second`).
#pragma once

#include "steer/steering_policy.hpp"

namespace hvc::steer {

struct CostAwareConfig {
  double budget_per_second = 0.01;   ///< dollars/s accrued
  double max_budget = 0.05;          ///< bucket cap (dollars)
  double min_ms_saved_per_dollar = 100.0;
  /// Ignore costs for control packets up to this size (they are tiny and
  /// their acceleration is what makes the channel worth paying for).
  std::int64_t free_control_bytes = 80;
};

class CostAwarePolicy final : public SteeringPolicy {
 public:
  explicit CostAwarePolicy(CostAwareConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "cost-aware"; }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override;

  [[nodiscard]] double total_spent() const { return spent_; }
  [[nodiscard]] const CostAwareConfig& config() const { return cfg_; }

 private:
  CostAwareConfig cfg_;
  double bucket_ = 0.0;
  double spent_ = 0.0;
  sim::Time last_refill_ = 0;
};

}  // namespace hvc::steer
