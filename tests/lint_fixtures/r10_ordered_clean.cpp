// R10 clean: std::map iterates in key order, so exporting a value
// derived from its iteration is deterministic. Zero taint findings.
namespace fx10e {

void fx10e_dump() {
  std::map<int, double> metrics;
  std::string row;
  for (const auto& [k, v] : metrics) {
    row = k;
  }
  to_jsonl(row);
}

}  // namespace fx10e
