#include "pop/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace hvc::pop {

namespace {

// Seed-derivation lanes (sim::seed_mix sub-keys): one for the engine's
// own stream (arrival process), one parent for all per-user streams.
constexpr std::uint64_t kEngineLane = 0xA221;
constexpr std::uint64_t kUserLane = 0xC17F;

// Tag layout (engine.hpp): kind | slot | epoch.
constexpr std::uint32_t kEpochMask = 0x0000ffffu;
constexpr std::uint32_t kKindMask = 0xff000000u;
constexpr std::uint32_t kSlotShift = 16;
constexpr std::uint32_t kSlotMax = 0xff;

// Admission reason tags — shared verbatim between span legs and the
// steering-audit join so --explain and the audit log tell one story.
constexpr const char* kReasonEmbbOnly = "city:embb-only";
constexpr const char* kReasonEmbbLarge = "city:embb-large";
constexpr const char* kReasonUrllcAdmitted = "city:urllc-admitted";
constexpr const char* kReasonUrllcSpill = "city:urllc-spill";
constexpr const char* kReasonChunk = "city:chunk";

/// Alone-transfer time of `bytes` at `rate` bytes/s, in whole ns — the
/// serialization component of the exact critical-path decomposition.
std::int64_t alone_ns(double bytes, double rate_bytes_per_s) {
  return static_cast<std::int64_t>(
      std::llround(bytes * 1e9 / std::max(rate_bytes_per_s, 1.0)));
}

}  // namespace

// ---- PsLink -----------------------------------------------------------

PsLink::PsLink(sim::Simulator& sim, double rate_bytes_per_s)
    : sim_(sim),
      rate_(std::max(rate_bytes_per_s, 1.0)),
      timer_(sim, [this] { pop_and_dispatch(); }) {}

void PsLink::advance_to_now() {
  const sim::Time now = sim_.now();
  if (now > last_) {
    if (!heap_.empty()) {
      const double dt_s = static_cast<double>(now - last_) * 1e-9;
      vwork_ += dt_s * rate_ / static_cast<double>(heap_.size());
    }
    last_ = now;
  }
}

void PsLink::start(std::uint32_t user, std::uint32_t tag, double bytes) {
  advance_to_now();
  heap_.push_back({vwork_ + std::max(bytes, 1.0), seq_++, user, tag});
  std::push_heap(heap_.begin(), heap_.end(), later);
  rearm();
}

void PsLink::pop_and_dispatch() {
  advance_to_now();
  // Completion tolerance: the fire time is rounded up to whole
  // nanoseconds, so at the timer the head's v_end is reached up to
  // accumulated double rounding; eps absorbs it (fractions of a byte).
  const double eps = 1e-9 * vwork_ + 1e-3;
  done_scratch_.clear();
  while (!heap_.empty() && heap_.front().v_end <= vwork_ + eps) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    done_scratch_.push_back(heap_.back());
    heap_.pop_back();
  }
  rearm();
  // Dispatch after the heap is consistent: callbacks may start() new
  // transfers on this link (a page's next object), which re-arms again.
  for (const Xfer& x : done_scratch_) {
    if (on_done_) on_done_(x.user, x.tag);
  }
}

void PsLink::rearm() {
  if (heap_.empty()) {
    timer_.cancel();
    return;
  }
  const double n = static_cast<double>(heap_.size());
  const double remaining = std::max(0.0, heap_.front().v_end - vwork_);
  const double dt_s = remaining * n / rate_;
  sim::Duration dt = static_cast<sim::Duration>(std::ceil(dt_s * 1e9));
  if (dt < 1) dt = 1;
  timer_.arm(dt);
}

double PsLink::predicted_completion_s(double bytes) const {
  return bytes * (static_cast<double>(heap_.size()) + 1.0) / rate_;
}

// ---- CityEngine -------------------------------------------------------

CityEngine::CityEngine(sim::Simulator& sim, const CityConfig& cfg)
    : sim_(sim),
      cfg_(cfg),
      embb_(sim, cfg.cell.embb_rate_bps / 8.0),
      urllc_(sim, cfg.cell.urllc_rate_bps / 8.0),
      engine_rng_(sim::seed_mix(cfg.seed, kEngineLane)) {
  cfg_.population.validate();
  const auto done = [this](std::uint32_t u, std::uint32_t tag) {
    on_transfer_done(u, tag);
  };
  embb_.set_on_done(done);
  urllc_.set_on_done(done);
  probes_.add("pop", "pop.active_users",
              [this] { return static_cast<double>(active_); });
  probes_.add("pop", "pop.embb_active_flows",
              [this] { return static_cast<double>(embb_.active()); });
  probes_.add("pop", "pop.urllc_active_flows",
              [this] { return static_cast<double>(urllc_.active()); });
  probes_.add("pop", "pop.urllc_spilled", [this] {
    return static_cast<double>(result_.urllc_spilled);
  });
  // Span layer: active() is non-null only when the run enabled spans
  // (the exp isolation contract), so the default-off path costs one
  // pointer test per hook.
  spans_ = obs::SpanRecorder::active();
}

void CityEngine::start() {
  users_.reserve(static_cast<std::size_t>(cfg_.population.users));
  for (std::int64_t i = 0; i < cfg_.population.users; ++i) add_user();
  if (cfg_.population.churn.arrival_rate_per_s > 0) schedule_arrival();
}

void CityEngine::add_user() {
  const auto slot = static_cast<std::uint32_t>(users_.size());
  User u;
  u.rng = sim::CounterStream(
      sim::seed_mix(sim::seed_mix(cfg_.seed, kUserLane), slot));
  const ArchetypeMix& mix = cfg_.population.mix;
  const double total = mix.web + mix.video + mix.background;
  const double r = u.rng.uniform() * total;
  u.kind = r < mix.web ? kWeb : r < mix.web + mix.video ? kVideo
                                                        : kBackground;
  users_.acquire(std::move(u));
  if (spans_ != nullptr) sbuild_.resize(users_.size());
  activate(slot);
}

void CityEngine::activate(std::uint32_t u) {
  User& user = users_.at(u);  // acquire() already marked the slot live
  ++active_;
  result_.peak_active = std::max(result_.peak_active, active_);
  const double session_s = cfg_.population.churn.mean_session_s;
  if (session_s > 0) {
    const double hold = exponential(user.rng, session_s);
    sim_.after(sim::seconds_f(hold), [this, u, e = users_.gen(u)] {
      if (users_.alive({u, e})) depart(u);
    });
  }
  switch (user.kind) {
    case kWeb:
      // Desynchronized start: the population did not all click at t=0.
      schedule_think(u);
      break;
    case kVideo:
      user.chunk_due =
          sim_.now() +
          sim::seconds_f(user.rng.uniform() * cfg_.population.video.chunk_s);
      schedule_chunk(u);
      break;
    case kBackground:
      schedule_bg(u);
      break;
  }
}

void CityEngine::depart(std::uint32_t u) {
  if (!users_.live(u)) return;
  users_.retire_slot(u);  // bumps the epoch; in-flight checks go stale
  --active_;
  if (spans_ != nullptr && sbuild_[u].active()) {
    sbuild_[u].abort();  // the unit died incomplete; never offered
    spans_->note_aborted();
  }
  fold_user(u);
  ++result_.departures;
  // Transfers this user still has in flight keep consuming capacity
  // (the radio does not know the app gave up); their completions are
  // dropped by the epoch check in on_transfer_done.
}

void CityEngine::fold_user(std::uint32_t u) {
  User& user = users_.at(u);  // retired slots stay readable
  if (user.metric_n == 0) return;
  result_.cohorts.cohort(cohort_name(user.kind))
      .fairness.add(user.metric_sum / static_cast<double>(user.metric_n));
}

const char* CityEngine::cohort_name(Kind k) const {
  switch (k) {
    case kWeb: return "web";
    case kVideo: return "video";
    case kBackground: return "background";
  }
  return "web";
}

// ---- web archetype ----------------------------------------------------

void CityEngine::schedule_think(std::uint32_t u) {
  User& user = users_.at(u);
  const double think =
      exponential(user.rng, cfg_.population.web.think_time_s);
  sim_.after(sim::seconds_f(think), [this, u, e = users_.gen(u)] {
    if (users_.alive({u, e})) start_page(u);
  });
}

void CityEngine::start_page(std::uint32_t u) {
  User& user = users_.at(u);
  const WebArchetype& web = cfg_.population.web;
  user.op_start = sim_.now();
  user.levels_left = static_cast<std::uint8_t>(
      user.rng.uniform_int(web.min_levels, web.max_levels));
  if (spans_ != nullptr) {
    obs::SpanUnitBuilder& b = sbuild_[u];
    b.begin("web", "plt_ms", u, sim_.now());
    // Stage 1 opens now; its leading propagation is the request RTT, so
    // stage durations stay contiguous and the PLT sum is exact.
    b.begin_stage(sim_.now(), cfg_.cell.embb_rtt, "embb");
  }
  // Request RTT, then the document itself (level 1, one object).
  sim_.after(cfg_.cell.embb_rtt, [this, u, e = users_.gen(u)] {
    if (!users_.alive({u, e})) return;
    User& usr = users_.at(u);
    const WebArchetype& w = cfg_.population.web;
    usr.objs_in_flight = 1;
    start_object(u, 0,
                 usr.rng.uniform(w.html_min_bytes, w.html_max_bytes));
  });
}

void CityEngine::begin_level(std::uint32_t u) {
  User& user = users_.at(u);
  const WebArchetype& web = cfg_.population.web;
  const int k = static_cast<int>(
      user.rng.uniform_int(web.min_objects, web.max_objects));
  user.objs_in_flight = static_cast<std::uint16_t>(k);
  for (int i = 0; i < k; ++i) {
    start_object(u, static_cast<std::uint32_t>(i),
                 pareto(user.rng, web.object_xm_bytes, web.object_alpha,
                        web.object_cap_bytes));
  }
}

void CityEngine::start_object(std::uint32_t u, std::uint32_t slot,
                              double bytes) {
  const std::uint32_t tag = kTagWebObject |
                            (std::min(slot, kSlotMax) << kSlotShift) |
                            (users_.gen(u) & kEpochMask);
  const SteerSpec& st = cfg_.population.steer;
  PsLink* link = &embb_;
  const char* channel = "embb";
  const char* reason = kReasonEmbbOnly;
  if (st.enabled && cfg_.cell.has_urllc) {
    if (bytes <= st.max_bytes) {
      // Delay-bound admission: take the scarce pool only when it can
      // still honor the bound given its current occupancy.
      const double predicted_ms =
          (urllc_.predicted_completion_s(bytes) +
           sim::to_seconds(cfg_.cell.urllc_rtt)) *
          1e3;
      if (predicted_ms <= st.delay_bound_ms) {
        ++result_.urllc_admitted;
        link = &urllc_;
        channel = "urllc";
        reason = kReasonUrllcAdmitted;
      } else {
        ++result_.urllc_spilled;
        reason = kReasonUrllcSpill;
      }
    } else {
      reason = kReasonEmbbLarge;
    }
  }
  if (spans_ != nullptr && sbuild_[u].active()) {
    sbuild_[u].leg_open(slot, sim_.now(), static_cast<std::int64_t>(bytes),
                        channel, reason,
                        alone_ns(bytes, link->rate_bytes_per_s()));
  }
  // Audit join: the same reason tag the span leg carries, recorded as a
  // "city-admission" decision so --explain and the audit log correlate.
  if (auto* al = obs::SteeringAuditLog::active()) {
    obs::AuditRecord rec;
    rec.at = sim_.now();
    rec.packet_id = ++admissions_;
    rec.flow_id = u;
    rec.size_bytes = static_cast<std::uint32_t>(
        std::min(bytes, 4294967295.0));
    rec.direction = obs::kDirDown;
    rec.chosen = link == &urllc_ ? 1 : 0;
    rec.reason = reason;
    rec.policy = "city-admission";
    rec.channels.push_back(
        {0, embb_.predicted_completion_s(bytes) * 1e3 +
                sim::to_millis(cfg_.cell.embb_rtt)});
    if (cfg_.cell.has_urllc) {
      rec.channels.push_back(
          {0, urllc_.predicted_completion_s(bytes) * 1e3 +
                  sim::to_millis(cfg_.cell.urllc_rtt)});
    }
    al->record(std::move(rec));
  }
  link->start(u, tag, bytes);
}

// ---- video archetype --------------------------------------------------

void CityEngine::schedule_chunk(std::uint32_t u) {
  User& user = users_.at(u);
  const sim::Time when = std::max(sim_.now(), user.chunk_due);
  sim_.at(when, [this, u, e = users_.gen(u)] {
    if (users_.alive({u, e})) start_chunk(u);
  });
}

void CityEngine::start_chunk(std::uint32_t u) {
  User& user = users_.at(u);
  const VideoArchetype& video = cfg_.population.video;
  user.op_start = sim_.now();
  const double jitter = user.rng.uniform(0.7, 1.3);
  const double bytes = video.kbps * 1000.0 / 8.0 * video.chunk_s * jitter;
  if (spans_ != nullptr) {
    // Unit t0 is the pacing deadline, not now: time spent waiting behind
    // the previous chunk is real user-visible latency (queueing).
    obs::SpanUnitBuilder& b = sbuild_[u];
    b.begin("video", "latency_ms", u, user.chunk_due);
    b.begin_stage(user.chunk_due, 0, "");
    b.leg_open(0, user.chunk_due, static_cast<std::int64_t>(bytes), "embb",
               kReasonChunk, alone_ns(bytes, embb_.rate_bytes_per_s()));
  }
  embb_.start(u, kTagVideoChunk | (users_.gen(u) & kEpochMask), bytes);
}

// ---- background archetype ---------------------------------------------

void CityEngine::schedule_bg(std::uint32_t u) {
  User& user = users_.at(u);
  const double gap =
      exponential(user.rng, cfg_.population.background.period_s);
  sim_.after(sim::seconds_f(gap), [this, u, e = users_.gen(u)] {
    if (users_.alive({u, e})) start_bg(u);
  });
}

void CityEngine::start_bg(std::uint32_t u) {
  User& user = users_.at(u);
  const BackgroundArchetype& bg = cfg_.population.background;
  user.op_start = sim_.now();
  user.metric_aux = pareto(user.rng, bg.xm_bytes, bg.alpha, bg.cap_bytes);
  embb_.start(u, kTagBgTransfer | (users_.gen(u) & kEpochMask),
              user.metric_aux);
}

// ---- completion dispatch ----------------------------------------------

void CityEngine::on_transfer_done(std::uint32_t u, std::uint32_t tag) {
  if (!users_.live(u) ||
      (users_.gen(u) & kEpochMask) != (tag & kEpochMask)) {
    return;  // owner departed while the transfer was in flight
  }
  User& user = users_.at(u);
  const std::uint32_t kind = tag & kKindMask;
  stats::CohortSet& cohorts = result_.cohorts;
  if (kind == kTagWebObject) {
    if (spans_ != nullptr && sbuild_[u].active()) {
      sbuild_[u].leg_close((tag >> kSlotShift) & kSlotMax, sim_.now());
    }
    if (--user.objs_in_flight > 0) return;
    if (--user.levels_left > 0) {
      if (spans_ != nullptr && sbuild_[u].active()) {
        // The next stage opens NOW (contiguity): its leading propagation
        // is the parse+request RTT before its objects go out.
        sbuild_[u].end_stage(sim_.now());
        sbuild_[u].begin_stage(sim_.now(), cfg_.cell.embb_rtt, "embb");
      }
      // Next dependency level is discovered by parsing what arrived:
      // one more request RTT before its objects go out.
      sim_.after(cfg_.cell.embb_rtt, [this, u, e = users_.gen(u)] {
        if (users_.alive({u, e})) begin_level(u);
      });
      return;
    }
    const double plt_ms = sim::to_millis(sim_.now() - user.op_start);
    if (spans_ != nullptr && sbuild_[u].active()) {
      sbuild_[u].end_stage(sim_.now());
      spans_->offer(sbuild_[u].finish(
          sim_.now(), sim_.now() - user.op_start, plt_ms));
    }
    cohorts.cohort("web").add("plt_ms", plt_ms);
    user.metric_sum += plt_ms;
    ++user.metric_n;
    ++result_.pages;
    schedule_think(u);
  } else if (kind == kTagVideoChunk) {
    const double latency_ms =
        std::max(0.0, sim::to_millis(sim_.now() - user.chunk_due));
    if (spans_ != nullptr && sbuild_[u].active()) {
      obs::SpanUnitBuilder& b = sbuild_[u];
      b.leg_close(0, sim_.now());
      b.end_stage(sim_.now());
      spans_->offer(
          b.finish(sim_.now(), sim_.now() - user.chunk_due, latency_ms));
    }
    cohorts.cohort("video").add("latency_ms", latency_ms);
    user.metric_sum += latency_ms;
    ++user.metric_n;
    ++result_.chunks;
    user.chunk_due += sim::seconds_f(cfg_.population.video.chunk_s);
    schedule_chunk(u);
  } else {  // kTagBgTransfer
    const double dur_s = sim::to_seconds(sim_.now() - user.op_start);
    const double xput_mbps =
        dur_s > 0 ? user.metric_aux * 8.0 / dur_s / 1e6 : 0.0;
    cohorts.cohort("background").add("xput_mbps", xput_mbps);
    user.metric_sum += xput_mbps;
    ++user.metric_n;
    ++result_.bg_transfers;
    schedule_bg(u);
  }
}

// ---- churn ------------------------------------------------------------

void CityEngine::schedule_arrival() {
  const double gap = exponential(
      engine_rng_, 1.0 / cfg_.population.churn.arrival_rate_per_s);
  sim_.after(sim::seconds_f(gap), [this] {
    ++result_.arrivals;
    add_user();
    schedule_arrival();
  });
}

// ---- distributions ----------------------------------------------------

double CityEngine::exponential(sim::CounterStream& s, double mean) {
  double u = s.uniform();
  while (u <= 1e-300) u = s.uniform();
  return -mean * std::log(u);
}

double CityEngine::pareto(sim::CounterStream& s, double xm, double alpha,
                          double cap) {
  double u = s.uniform();
  while (u <= 1e-300) u = s.uniform();
  return std::min(cap, xm / std::pow(u, 1.0 / alpha));
}

// ---- wrap-up ----------------------------------------------------------

void CityEngine::finish() {
  for (std::uint32_t u = 0; u < users_.size(); ++u) {
    if (users_.live(u)) fold_user(u);
  }
  if (spans_ != nullptr) {
    std::uint64_t trunc = 0;
    for (const obs::SpanUnitBuilder& b : sbuild_) trunc += b.truncated();
    spans_->note_truncated(trunc);
  }
  auto& reg = obs::MetricsRegistry::current();
  reg.counter("pop.pages").inc(static_cast<std::int64_t>(result_.pages));
  reg.counter("pop.chunks").inc(static_cast<std::int64_t>(result_.chunks));
  reg.counter("pop.bg_transfers")
      .inc(static_cast<std::int64_t>(result_.bg_transfers));
  reg.counter("pop.urllc_admitted")
      .inc(static_cast<std::int64_t>(result_.urllc_admitted));
  reg.counter("pop.urllc_spilled")
      .inc(static_cast<std::int64_t>(result_.urllc_spilled));
  reg.counter("pop.arrivals")
      .inc(static_cast<std::int64_t>(result_.arrivals));
  reg.counter("pop.departures")
      .inc(static_cast<std::int64_t>(result_.departures));
  reg.gauge("pop.peak_active")
      .set(static_cast<double>(result_.peak_active));
}

CityResult run_city(const CityConfig& cfg) {
  sim::Simulator sim;
  CityEngine engine(sim, cfg);
  // Same hookup core::Scenario does: the run's telemetry sampler (if the
  // exp isolation scope installed one) ticks on this simulator.
  if (auto* ts = obs::TelemetrySampler::active()) ts->attach(sim);
  engine.start();
  const std::size_t executed = sim.run_until(cfg.duration);
  engine.finish();
  CityResult r = std::move(engine.result());
  r.events = executed;
  return r;
}

}  // namespace hvc::pop
