// Fixture: R6 (header-not-self-sufficient) — uses std::string without
// including <string>, so it cannot compile on its own.
#pragma once

namespace fixture {

inline std::string r6_name() { return "not self sufficient"; }

}  // namespace fixture
