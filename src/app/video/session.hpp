// Real-time SVC video sender/receiver pair over a datagram flow — the
// §3.3 experiment. The sender emits each frame's layers as separate
// messages (layer k carries priority k); the receiver implements the
// paper's decode rule: on receiving a frame's layer 0, wait up to 60 ms —
// or until layer 0 of the next two frames has arrived — then decode at the
// highest usable layer. Inter-layer and inter-frame dependencies apply:
// layer k decodes only if layers 0..k of this frame arrived and layer k of
// the previous frame was decoded (keyframes reset the chain).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "app/video/svc.hpp"
#include "net/node.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "transport/datagram.hpp"

namespace hvc::app::video {

struct VideoSender {
  VideoSender(net::Node& node, net::FlowId flow, SvcConfig cfg = {});

  /// Start emitting frames every 1/fps until `stop()` or `duration`.
  void start(sim::Duration duration);
  void stop() { running_ = false; }

  [[nodiscard]] int frames_sent() const { return frames_sent_; }
  /// Capture time of each sent frame (receiver latency reference).
  [[nodiscard]] sim::Time capture_time(int frame) const;

  transport::DatagramSocket socket;

 private:
  void emit_frame();

  sim::Simulator& sim_;
  SvcEncoder encoder_;
  sim::Time deadline_ = 0;
  bool running_ = false;
  int frames_sent_ = 0;
  std::map<int, sim::Time> capture_times_;
};

struct FrameRecord {
  int frame = 0;
  int layers_decoded = 0;  ///< 0 = concealed (dependency broken)
  double ssim = 0.0;
  sim::Duration latency = 0;  ///< decode time - capture time
  bool keyframe = false;
};

struct VideoStats {
  sim::Summary latency_ms;   ///< per decoded frame
  sim::Summary ssim;
  std::int64_t frames_decoded = 0;
  std::int64_t frames_concealed = 0;  ///< decoded with broken dependency
  std::array<std::int64_t, 4> decoded_at_layer{};  ///< histogram by layers
};

struct VideoReceiverConfig {
  sim::Duration decode_wait = sim::milliseconds(60);
  int lookahead_frames = 2;  ///< decode early once this many layer-0s seen
  int keyframe_interval = 30;
  int layers = 3;
  std::uint64_t seed = 23;
};

class VideoReceiver {
 public:
  VideoReceiver(net::Node& node, net::FlowId flow, const VideoSender& sender,
                VideoReceiverConfig cfg = {});

  [[nodiscard]] const VideoStats& stats() const { return stats_; }
  void set_on_frame(std::function<void(const FrameRecord&)> cb) {
    on_frame_ = std::move(cb);
  }

 private:
  struct FrameState {
    int highest_contiguous = -1;  ///< layers 0..h fully received
    std::map<int, bool> layers;
    bool layer0_seen = false;
    bool decoded = false;
    std::unique_ptr<sim::Timer> decode_timer;
    sim::Time layer0_at = 0;      ///< first layer-0 arrival (span support)
    std::int64_t bytes = 0;       ///< layer bytes received before decode
  };

  void on_message(const transport::DatagramSocket::MessageEvent& ev);
  void decode(int frame);

  sim::Simulator& sim_;
  const VideoSender& sender_;
  VideoReceiverConfig cfg_;
  transport::DatagramSocket socket_;
  std::map<int, FrameState> frames_;
  std::map<int, int> decoded_level_;  ///< frame -> layers decoded
  sim::Rng rng_;
  VideoStats stats_;
  std::function<void(const FrameRecord&)> on_frame_;
  obs::SpanRecorder* spans_ = nullptr;  ///< non-null when a run records
  obs::SpanUnitBuilder sbuild_;
};

}  // namespace hvc::app::video
