#include "net/shim.hpp"

#include "obs/audit.hpp"
#include "obs/prof.hpp"
#include "obs/tracer.hpp"

namespace hvc::net {

Shim::Shim(sim::Simulator& sim, channel::HvcSet& channels,
           channel::Direction direction,
           std::unique_ptr<steer::SteeringPolicy> policy)
    : sim_(sim),
      channels_(channels),
      direction_(direction),
      policy_(std::move(policy)) {
  stats_.packets_per_channel.assign(channels_.size(), 0);
  stats_.bytes_per_channel.assign(channels_.size(), 0);
  bind_metrics();
}

Shim::~Shim() {
  fold_decisions();
  for (std::size_t i = 0; i < m_packets_.size(); ++i) {
    m_packets_[i]->inc(stats_.packets_per_channel[i]);
    m_bytes_[i]->inc(stats_.bytes_per_channel[i]);
  }
  m_duplicates_->inc(stats_.duplicates_sent);
}

void Shim::set_policy(std::unique_ptr<steer::SteeringPolicy> policy) {
  fold_decisions();  // credit the outgoing policy before rebinding
  policy_ = std::move(policy);
  bind_metrics();
}

void Shim::fold_decisions() {
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    m_decisions_[i]->inc(decisions_[i]);
    decisions_[i] = 0;
  }
}

void Shim::bind_metrics() {
  auto& reg = obs::MetricsRegistry::current();
  const std::string dir =
      direction_ == channel::Direction::kUplink ? "up" : "down";
  const std::string shim_prefix = "shim." + dir + ".ch";
  policy_name_ = policy_->name();
  const std::string policy_prefix =
      "steer." + policy_name_ + "." + dir + ".decisions.ch";
  m_packets_.clear();
  m_bytes_.clear();
  m_decisions_.clear();
  decisions_.assign(channels_.size(), 0);
  probes_.clear();
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const std::string ch = std::to_string(i);
    m_packets_.push_back(&reg.counter(shim_prefix + ch + ".packets"));
    m_bytes_.push_back(&reg.counter(shim_prefix + ch + ".bytes"));
    m_decisions_.push_back(&reg.counter(policy_prefix + ch));
    // Telemetry mirror of decisions_: a running per-channel share curve
    // (decision counts over sim time) for the current policy.
    probes_.add("steer",
                "steer." + policy_name_ + "." + dir + ".ch" + ch +
                    ".decisions",
                [this, i] { return static_cast<double>(decisions_[i]); });
  }
  m_duplicates_ = &reg.counter("shim." + dir + ".duplicates");
}

std::span<const steer::ChannelView> Shim::snapshot_views() const {
  if (views_scratch_.size() != channels_.size()) {
    // First decision (or a test re-wired the channel set): size the
    // scratch once; every later call refills it in place.
    // hvc-lint: allow(hotpath-alloc): runs once per channel-set change,
    // not per decision
    views_scratch_.resize(channels_.size());
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const auto& ch = channels_.at(i);
    const auto& link = ch.link(direction_);
    steer::ChannelView v;
    v.index = i;
    v.base_owd = ch.profile().owd;
    v.avg_rate_bps = link.average_rate_bps();
    v.recent_rate_bps = link.recent_delivery_rate_bps();
    v.queued_bytes = link.queued_bytes();
    v.queue_limit_bytes = ch.profile().queue_limit_bytes;
    v.loss_rate = ch.profile().loss.bernoulli +
                  ch.profile().loss.ge_loss_in_bad *
                      (ch.profile().loss.ge_p_good_to_bad > 0 ? 0.1 : 0.0);
    v.reliable = ch.profile().reliable;
    v.cost_per_megabyte = ch.profile().cost_per_megabyte;
    // Link-down state is observable at the shim (the MAC reports loss of
    // signal immediately); policies use it to fail over.
    v.down = link.fault_down();
    views_scratch_[i] = v;
  }
  return views_scratch_;
}

void Shim::send(PacketPtr p) {
  HVC_PROF_SCOPE(obs::prof::Hook::kSteer);
  const auto views = snapshot_views();

  steer::Decision decision;
  // What the policy was allowed to see (post layering enforcement) — the
  // audit log records these, not the packet's true fields.
  std::uint8_t seen_flow_prio = p->flow_priority;
  std::int16_t seen_app_prio =
      p->app.present ? static_cast<std::int16_t>(p->app.priority) : -1;
  if (policy_->uses_app_info() && policy_->uses_flow_priority()) {
    decision = policy_->steer(*p, views, sim_.now());
  } else {
    // Enforce layering: blank the fields the policy may not read for
    // the duration of the call, then restore them. (This used to take
    // a deep copy of the packet — sack vector and all — per decision;
    // the policy sees identical bytes either way.)
    const AppHeader saved_app = p->app;
    const std::uint8_t saved_flow_prio = p->flow_priority;
    if (!policy_->uses_app_info()) {
      p->app = AppHeader{};
      seen_app_prio = -1;
    }
    if (!policy_->uses_flow_priority()) {
      p->flow_priority = 0;
      seen_flow_prio = 0;
    }
    decision = policy_->steer(*p, views, sim_.now());
    p->app = saved_app;
    p->flow_priority = saved_flow_prio;
  }

  if (decision.channel >= channels_.size()) decision.channel = 0;

  const std::uint8_t dir8 = direction_ == channel::Direction::kUplink
                                ? obs::kDirUp
                                : obs::kDirDown;
  if (auto* tr = obs::PacketTracer::active()) {
    tr->record(obs::EventKind::kSteer, sim_.now(), p->id, p->flow,
               static_cast<std::uint8_t>(decision.channel), dir8,
               static_cast<std::uint32_t>(p->size_bytes),
               static_cast<std::uint8_t>(decision.duplicate_on.size()));
  }

  if (auto* al = obs::SteeringAuditLog::active()) {
    obs::AuditRecord rec;
    rec.at = sim_.now();
    rec.packet_id = p->id;
    rec.flow_id = p->flow;
    rec.size_bytes = static_cast<std::uint32_t>(p->size_bytes);
    rec.packet_type = static_cast<std::uint8_t>(p->type);
    rec.flow_priority = seen_flow_prio;
    rec.app_priority = seen_app_prio;
    rec.direction = dir8;
    rec.chosen = static_cast<std::uint8_t>(decision.channel);
    rec.duplicates = static_cast<std::uint8_t>(decision.duplicate_on.size());
    rec.reason = decision.reason;
    rec.policy = policy_name_;
    // hvc-lint: allow(hotpath-alloc): audit records only exist when the steering audit log is enabled (off in perf runs)
    rec.channels.reserve(views.size());
    for (const auto& v : views) {
      // hvc-lint: allow(hotpath-alloc): appends into the reserve()d capacity above; never reallocates
      rec.channels.push_back(
          {v.queued_bytes,
           sim::to_millis(v.est_delivery_delay(p->size_bytes))});
    }
    al->record(std::move(rec));
  }

  for (const std::size_t dup : decision.duplicate_on) {
    if (dup >= channels_.size() || dup == decision.channel) continue;
    if (p->dup_group == 0) p->dup_group = p->id;
    PacketPtr copy = clone_packet(*p);
    copy->copies = 2;
    copy->channel = static_cast<std::uint8_t>(dup);
    p->copies = 2;
    ++stats_.duplicates_sent;
    ++stats_.packets_per_channel[dup];
    stats_.bytes_per_channel[dup] += copy->size_bytes;
    channels_.at(dup).link(direction_).send(std::move(copy));
  }

  p->channel = static_cast<std::uint8_t>(decision.channel);
  ++stats_.packets_per_channel[decision.channel];
  stats_.bytes_per_channel[decision.channel] += p->size_bytes;
  ++decisions_[decision.channel];
  channels_.at(decision.channel).link(direction_).send(std::move(p));
}

}  // namespace hvc::net
