file(REMOVE_RECURSE
  "CMakeFiles/tsn_test.dir/tsn_test.cpp.o"
  "CMakeFiles/tsn_test.dir/tsn_test.cpp.o.d"
  "tsn_test"
  "tsn_test.pdb"
  "tsn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
