// hvc_perf — run the pinned-cycle hot-path suite and manage the
// BENCH_*.json perf trajectory.
//
//   hvc_perf                         full run, writes BENCH_hotpath.json
//   hvc_perf --quick                 CI smoke: scale/8, 3 repeats
//   hvc_perf --baseline BENCH_hotpath.json --check --tolerance 0.5
//                                    regression gate vs a committed manifest
//   hvc_perf --list                  registered benches, one per line
//
// Exit codes: 0 ok, 1 regression/compare failure or I/O error, 2 usage or
// profiler-not-compiled-in.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/hotpath/harness.hpp"
#include "obs/perf_manifest.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: hvc_perf [options]\n"
      "  --quick            reduced scale + repeats (CI smoke)\n"
      "  --repeats N        measured repeats per bench (default 7)\n"
      "  --warmup N         discarded warmup repeats (default 2)\n"
      "  --filter SUBSTR    only benches whose name contains SUBSTR\n"
      "  --pin CPU          pin to CPU before measuring (default 0; -1 off)\n"
      "  --name NAME        manifest name (default hotpath)\n"
      "  --out FILE         output path (default BENCH_<name>.json)\n"
      "  --baseline FILE    manifest to compare against\n"
      "  --check            exit 1 when a bench regresses below tolerance\n"
      "  --tolerance F      allowed fractional slowdown (default 0.5)\n"
      "  --list             list registered benches and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;

  bench::hotpath::SuiteOptions opts;
  std::string out_file;
  std::string baseline_file;
  bool check = false;
  bool list = false;
  double tolerance = 0.5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hvc_perf: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--repeats") {
      opts.repeats = std::atoi(next());
    } else if (arg == "--warmup") {
      opts.warmup = std::atoi(next());
    } else if (arg == "--filter") {
      opts.filter = next();
    } else if (arg == "--pin") {
      opts.pin_cpu = std::atoi(next());
    } else if (arg == "--name") {
      opts.name = next();
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--baseline") {
      baseline_file = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--tolerance") {
      tolerance = std::atof(next());
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "hvc_perf: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (opts.repeats < 1 || opts.warmup < 0 || tolerance < 0.0) {
    std::fprintf(stderr, "hvc_perf: invalid repeats/warmup/tolerance\n");
    return 2;
  }

  bench::hotpath::register_default_suite();
  if (list) {
    for (const auto& def : bench::hotpath::registry()) {
      std::printf("%-24s %10llu %s\n", def.name.c_str(),
                  static_cast<unsigned long long>(def.scale),
                  def.unit.c_str());
    }
    return 0;
  }
  if (!bench::hotpath::prof_compiled_in()) {
    std::fprintf(stderr,
                 "hvc_perf: built with -DHVC_PROF=OFF; hook counters are "
                 "no-ops and cycle stats would be zeros. Rebuild with "
                 "-DHVC_PROF=ON (the default).\n");
    return 2;
  }

  const auto manifest = bench::hotpath::run_suite(opts);
  if (manifest.benches.empty()) {
    std::fprintf(stderr, "hvc_perf: no benches ran (filter \"%s\")\n",
                 opts.filter.c_str());
    return 2;
  }

  if (out_file.empty()) out_file = "BENCH_" + opts.name + ".json";
  if (!manifest.write(out_file)) {
    std::fprintf(stderr, "hvc_perf: failed to write %s\n", out_file.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu benches, git %s, pinned cpu %d)\n",
              out_file.c_str(), manifest.benches.size(),
              manifest.git_sha.c_str(), manifest.pinned_cpu);

  if (baseline_file.empty()) return 0;
  const auto baseline = obs::PerfManifest::read(baseline_file);
  if (!baseline) {
    std::fprintf(stderr, "hvc_perf: cannot read baseline %s\n",
                 baseline_file.c_str());
    return 1;
  }
  const auto result = obs::compare_perf(*baseline, manifest, tolerance);
  std::printf("\nvs %s (git %s, tolerance %.0f%%):\n%s", baseline_file.c_str(),
              baseline->git_sha.c_str(), tolerance * 100.0,
              result.to_text().c_str());
  if (!result.ok && check) {
    std::fprintf(stderr, "hvc_perf: regression vs %s\n",
                 baseline_file.c_str());
    return 1;
  }
  return 0;
}
