file(REMOVE_RECURSE
  "CMakeFiles/wan_cost_aware.dir/wan_cost_aware.cpp.o"
  "CMakeFiles/wan_cost_aware.dir/wan_cost_aware.cpp.o.d"
  "wan_cost_aware"
  "wan_cost_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_cost_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
