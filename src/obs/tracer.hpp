// Packet lifecycle tracer: a ring-buffered event sink recording where
// every packet went and where its delay accrued — the per-packet evidence
// behind the paper's §3 claims (which packets crossed which channel, when
// a policy flipped, how much time was queueing vs. propagation).
//
// Design constraints, in order:
//   1. Zero cost when disabled. The hot-path check is one relaxed load of
//      a process-global pointer (`PacketTracer::active()` returns nullptr
//      unless tracing is on); instrumentation sites compile to a test+jump.
//      Benchmarks run with the tracer off by default.
//   2. Bounded memory. Events land in a fixed-capacity ring; when it
//      wraps, the oldest events are overwritten (total_recorded() keeps
//      the true count so exports can report truncation).
//   3. Deterministic output. Events carry simulated time only; two runs
//      with the same seeds export byte-identical JSONL.
//
// Exports:
//   * JSONL — one event object per line, trivially grep/jq-able;
//   * Chrome trace_event JSON — opens directly in chrome://tracing or
//     Perfetto (https://ui.perfetto.dev) as per-channel timelines: one
//     track per (channel, direction), instant events per lifecycle step,
//     and complete ("X") spans for each packet's channel residency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace hvc::obs {

/// Lifecycle steps. Values are stable (they appear in exports).
enum class EventKind : std::uint8_t {
  kEnqueue = 0,  ///< accepted into a link's droptail queue
  kDequeue = 1,  ///< popped from the queue by a service opportunity
  kTx = 2,       ///< put on the wire (passed the loss model)
  kRx = 3,       ///< arrived at the receiving node
  kDrop = 4,     ///< lost; `arg` holds a DropReason
  kRetx = 5,     ///< a transport retransmitted this data
  kSteer = 6,    ///< the shim chose a channel; `arg` = duplicate count
  kReorder = 7,  ///< resequencer action; `arg` holds a ReorderAction
};

enum DropReason : std::uint8_t {
  kDropQueueFull = 0,   ///< droptail at the link queue
  kDropWire = 1,        ///< loss model on the wire
  kDropDuplicate = 2,   ///< redundant copy suppressed at the receiver
  kDropUnroutable = 3,  ///< no handler registered for the flow
};

enum ReorderAction : std::uint8_t {
  kReorderPass = 0,     ///< in order, delivered immediately
  kReorderHold = 1,     ///< buffered waiting for a gap
  kReorderGapFill = 2,  ///< released because the gap filled
  kReorderTimeout = 3,  ///< released by max-hold expiry
};

/// 255 in `channel`/`direction` means "not applicable".
inline constexpr std::uint8_t kNoChannel = 255;
inline constexpr std::uint8_t kNoDirection = 255;
/// Direction values (match channel::Direction's enumerators).
inline constexpr std::uint8_t kDirDown = 0;
inline constexpr std::uint8_t kDirUp = 1;

struct TraceEvent {
  sim::Time at = 0;              ///< simulated time, ns
  std::uint64_t packet_id = 0;
  std::uint64_t flow_id = 0;
  std::uint64_t aux = 0;         ///< kind-specific: retx wait ns, hold ns…
  std::uint32_t size_bytes = 0;
  EventKind kind = EventKind::kEnqueue;
  std::uint8_t channel = kNoChannel;
  std::uint8_t direction = kNoDirection;
  std::uint8_t arg = 0;          ///< kind-specific detail (see enums above)
};

[[nodiscard]] const char* to_string(EventKind k);
[[nodiscard]] const char* to_string(DropReason r);
[[nodiscard]] const char* to_string(ReorderAction a);

class PacketTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;  // ~48 MB

  /// Per-run instances are constructible directly; the sweep engine gives
  /// every concurrent run its own (installed via ScopedPacketTracer).
  PacketTracer() = default;
  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  /// A run-private tracer can die while still installed as this thread's
  /// active()/current() binding (enable() installs, and a throwing run
  /// can skip disable()); clear both so they never dangle.
  ~PacketTracer() {
    if (active_ == this) active_ = nullptr;
    if (current_ == this) current_ = nullptr;
  }

  /// The process-global tracer (exists even while disabled, so topology
  /// code can set channel names unconditionally).
  static PacketTracer& instance();

  /// The tracer topology/bookkeeping calls bind to: the innermost
  /// ScopedPacketTracer on this thread, or instance() when none is
  /// installed. Keeps channel-name writes race-free under concurrent
  /// simulations.
  static PacketTracer& current();

  /// Hot-path accessor: nullptr unless tracing is enabled *on this
  /// thread*. Call sites do
  ///   if (auto* tr = obs::PacketTracer::active()) tr->record(...);
  /// Thread-local so a tracing main-thread bench never races with sweep
  /// worker threads (which run with tracing off).
  [[nodiscard]] static PacketTracer* active() { return active_; }

  /// Start recording into a fresh ring of `capacity` events.
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stop recording; retained events stay exportable.
  void disable();
  /// Drop all events (and the total count); keeps enabled state.
  void clear();

  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(EventKind kind, sim::Time at, std::uint64_t packet_id,
              std::uint64_t flow_id, std::uint8_t channel,
              std::uint8_t direction, std::uint32_t size_bytes,
              std::uint8_t arg = 0, std::uint64_t aux = 0) {
    TraceEvent& e = ring_[head_];
    e.at = at;
    e.packet_id = packet_id;
    e.flow_id = flow_id;
    e.aux = aux;
    e.size_bytes = size_bytes;
    e.kind = kind;
    e.channel = channel;
    e.direction = direction;
    e.arg = arg;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++total_;
  }

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// All events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::size_t capacity() const {
    return enabled_ ? ring_.size() : 0;
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Channel names give exports human-readable track labels. Safe to call
  /// while disabled; the latest topology wins.
  void set_channel_name(std::size_t index, std::string name);
  [[nodiscard]] std::string channel_name(std::size_t index) const;

  /// One JSON object per line:
  ///   {"t_us":…,"ev":"rx","pkt":…,"flow":…,"ch":1,"dir":"up","bytes":…}
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace_event format (JSON Object Format, "traceEvents" array):
  /// loads in chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_chrome_trace() const;

 private:
  friend class ScopedPacketTracer;

  static thread_local PacketTracer* active_;
  static thread_local PacketTracer* current_;

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;        ///< next write slot
  std::uint64_t total_ = 0;
  bool enabled_ = false;
  std::vector<std::string> channel_names_;
};

/// RAII: installs a tracer as the calling thread's PacketTracer::current()
/// (and as active() if it is enabled) for the scope's lifetime. The sweep
/// engine wraps every run in one, so per-run topology construction writes
/// channel names into run-private state instead of the shared instance.
class ScopedPacketTracer {
 public:
  explicit ScopedPacketTracer(PacketTracer& tracer);
  ~ScopedPacketTracer();
  ScopedPacketTracer(const ScopedPacketTracer&) = delete;
  ScopedPacketTracer& operator=(const ScopedPacketTracer&) = delete;

 private:
  PacketTracer* prev_current_;
  PacketTracer* prev_active_;
};

/// Per-packet one-way-delay decomposition derived from lifecycle events:
/// for every packet that completed enqueue→…→rx on one channel, queueing
/// is dequeue−enqueue, propagation is rx−tx, and total is rx−enqueue.
/// Retransmit wait comes from kRetx events' aux field (time the data sat
/// lost before the transport resent it).
struct DelayDecomposition {
  struct PerChannel {
    std::string name;
    std::int64_t packets = 0;
    sim::Summary queueing_ms;
    sim::Summary propagation_ms;
    sim::Summary total_owd_ms;
  };
  std::vector<PerChannel> channels;  ///< indexed by channel id
  sim::Summary retx_wait_ms;
};

[[nodiscard]] DelayDecomposition decompose_delays(const PacketTracer& tracer);

}  // namespace hvc::obs
