#include "lint/index.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace hvc::lint {

namespace {

[[nodiscard]] bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

// Keywords that look like calls when followed by '(' but are not.
[[nodiscard]] bool is_control_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "return" || t == "sizeof" || t == "catch" || t == "alignof" ||
         t == "decltype" || t == "static_assert" || t == "noexcept" ||
         t == "alignas" || t == "assert" || t == "defined" ||
         t == "static_cast" || t == "dynamic_cast" || t == "const_cast" ||
         t == "reinterpret_cast" || t == "throw" || t == "co_return" ||
         t == "co_await" || t == "new" || t == "delete";
}

[[nodiscard]] bool is_type_keyword(const std::string& t) {
  return t == "auto" || t == "void" || t == "bool" || t == "char" ||
         t == "int" || t == "long" || t == "short" || t == "float" ||
         t == "double" || t == "unsigned" || t == "signed" ||
         t == "const" || t == "constexpr" || t == "static" ||
         t == "thread_local" || t == "inline" || t == "volatile" ||
         t == "mutable" || t == "extern" || t == "register";
}

}  // namespace

// ---- Scrubbed ---------------------------------------------------------

int Scrubbed::line_of(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<int>(it - line_starts.begin());
}

std::string_view Scrubbed::code_line(int line) const {
  const auto i = static_cast<std::size_t>(line - 1);
  if (i >= line_starts.size()) return {};
  const std::size_t start = line_starts[i];
  const std::size_t end =
      i + 1 < line_starts.size() ? line_starts[i + 1] - 1 : code.size();
  return std::string_view(code).substr(start, end - start);
}

std::string_view Scrubbed::comment_line(int line) const {
  const auto i = static_cast<std::size_t>(line - 1);
  if (i >= line_starts.size()) return {};
  const std::size_t start = line_starts[i];
  const std::size_t end =
      i + 1 < line_starts.size() ? line_starts[i + 1] - 1 : comments.size();
  return std::string_view(comments).substr(start, end - start);
}

Scrubbed scrub(std::string_view text) {
  Scrubbed out;
  out.code.assign(text.size(), ' ');
  out.comments.assign(text.size(), ' ');
  out.line_starts.push_back(0);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator for raw strings

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
      out.line_starts.push_back(i + 1);
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // swallow both slashes
          if (i < text.size() && text[i] == '\n') --i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' &&
                   (i >= 1 && text[i - 1] == 'R' &&
                    (i < 2 || !is_word(text[i - 2])))) {
          // R"delim( ... )delim"
          std::size_t p = i + 1;
          while (p < text.size() && text[p] != '(') ++p;
          raw_delim = ")" + std::string(text.substr(i + 1, p - i - 1)) + "\"";
          out.code[i] = '"';
          i = p;  // leave contents blanked from here on
          state = State::kRawString;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        out.comments[i] = c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          state = State::kCode;
        } else {
          out.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped char (stays blanked)
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// ---- suppression directives -------------------------------------------

FileSuppressions collect_suppressions(const std::string& path,
                                      const Scrubbed& sc,
                                      std::vector<Finding>* findings) {
  FileSuppressions out;
  constexpr std::string_view kTag = "hvc-lint:";
  // Diagnostics about the suppression machinery itself; not suppressible.
  constexpr const char* kAllowNeedsJustification =
      "allow-needs-justification";
  constexpr const char* kAllowUnknownRule = "allow-unknown-rule";
  for (int line = 1; line <= static_cast<int>(sc.line_count()); ++line) {
    const std::string_view comment = sc.comment_line(line);
    std::size_t at = comment.find(kTag);
    if (at == std::string_view::npos) continue;
    std::string_view rest = trim(comment.substr(at + kTag.size()));

    bool file_scope = false;
    if (rest.rfind("allow-file", 0) == 0) {
      file_scope = true;
      rest.remove_prefix(std::string_view("allow-file").size());
    } else if (rest.rfind("allow", 0) == 0) {
      rest.remove_prefix(std::string_view("allow").size());
    } else {
      findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                           "unrecognized hvc-lint directive (expected "
                           "allow(<rule>) or allow-file(<rule>))",
                           {},
                           0});
      continue;
    }
    rest = trim(rest);
    if (rest.empty() || rest.front() != '(') {
      findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                           "malformed allow: expected (<rule>[,<rule>...])",
                           {},
                           0});
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                           "malformed allow: missing ')'",
                           {},
                           0});
      continue;
    }
    const std::string_view rule_list = rest.substr(1, close - 1);
    std::string_view after = trim(rest.substr(close + 1));

    // A justification is mandatory: ": why this is safe". The "why" is
    // what turns an allow from a mute button into a proof obligation.
    bool justified = false;
    if (!after.empty() && after.front() == ':') {
      const std::string_view why = trim(after.substr(1));
      justified = why.size() >= 10;
    }
    if (!justified) {
      // Continuation comment lines immediately below count as the
      // justification body (long explanations wrap).
      const std::string_view next_comment =
          line < static_cast<int>(sc.line_count())
              ? trim(sc.comment_line(line + 1))
              : std::string_view{};
      justified = !after.empty() && after.front() == ':' &&
                  next_comment.size() >= 10;
    }
    if (!justified) {
      findings->push_back(
          {path, line, kAllowNeedsJustification, Severity::kError,
           "allow() must carry a justification: \"// hvc-lint: "
           "allow(rule): why this is provably safe\"",
           {},
           0});
      continue;
    }

    // Split the rule list and register.
    std::size_t start = 0;
    while (start <= rule_list.size()) {
      std::size_t comma = rule_list.find(',', start);
      if (comma == std::string_view::npos) comma = rule_list.size();
      const std::string rule{trim(rule_list.substr(start, comma - start))};
      start = comma + 1;
      if (rule.empty()) continue;
      if (!known_rule(rule)) {
        findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                             "allow names unknown rule '" + rule + "'",
                             {},
                             0});
        continue;
      }
      // R7: wallclock suppressions are themselves banned outside the
      // clock island — host time comes from obs::prof::now_ns(), not
      // from a local carve-out. (Island files skip R1 entirely, so a
      // wallclock allow there is merely dead weight, not an error.)
      if (rule == "wallclock" && !in_clock_island(path)) {
        findings->push_back(
            {path, line, "clock-island", Severity::kError,
             "allow(wallclock) outside the clock island (src/obs/prof*, "
             "bench/): call obs::prof::now_ns()/cycles() instead of "
             "suppressing the wallclock ban locally",
             {},
             0});
        continue;
      }
      if (file_scope) {
        out.file_allows.insert(rule);
        continue;
      }
      out.allows.insert({rule, line});
      // A directive on a comment-only line covers the next code line.
      if (trim(sc.code_line(line)).empty()) {
        int next = line + 1;
        while (next <= static_cast<int>(sc.line_count()) &&
               trim(sc.code_line(next)).empty() &&
               sc.comment_line(next).find(kTag) == std::string_view::npos) {
          ++next;
        }
        out.allows.insert({rule, next});
      }
    }
  }
  return out;
}

// ---- tokenizer --------------------------------------------------------

std::vector<Token> tokenize(const Scrubbed& sc) {
  std::vector<Token> out;
  const std::string& code = sc.code;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (is_space(c)) {
      ++i;
      continue;
    }
    const int line = sc.line_of(i);
    if (is_word(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t j = i + 1;
      while (j < code.size() && is_word(code[j])) ++j;
      out.push_back({Token::Kind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (is_word(code[j]) || code[j] == '.' ||
              ((code[j] == '+' || code[j] == '-') && j > 0 &&
               (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                code[j - 1] == 'p' || code[j - 1] == 'P')))) {
        ++j;
      }
      out.push_back({Token::Kind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      // Scrub leaves only the delimiters; a pair of matching delimiters
      // marks one literal. Collapse to a single token.
      std::size_t j = i + 1;
      while (j < code.size() && code[j] != c) ++j;
      out.push_back({Token::Kind::kString, std::string(1, c), line});
      i = j < code.size() ? j + 1 : j;
      continue;
    }
    // Multi-char operators the summarizer must not split.
    static constexpr std::string_view kTwo[] = {
        "::", "->", "==", "!=", "<=", ">=", "+=", "-=", "*=",
        "/=", "%=", "|=", "&=", "^=", "++", "--", "&&", "||",
        "<<", ">>"};
    bool matched = false;
    for (const auto& op : kTwo) {
      if (code.compare(i, op.size(), op) == 0) {
        // "<<=" / ">>=" fold into the shift token plus '='; good enough.
        out.push_back({Token::Kind::kPunct, std::string(op), line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---- summarizer -------------------------------------------------------

namespace {

/// Cursor over the token stream with bounds-safe access.
struct Cur {
  const std::vector<Token>& toks;
  [[nodiscard]] const std::string& text(std::size_t i) const {
    static const std::string kEmpty;
    return i < toks.size() ? toks[i].text : kEmpty;
  }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < toks.size() && toks[i].kind == Token::Kind::kIdent;
  }
  [[nodiscard]] int line(std::size_t i) const {
    return i < toks.size() ? toks[i].line : 0;
  }
};

/// Index of the token after the matching close for the open bracket at
/// `open` (tokens[open] must be "(", "{", or "["). Returns toks.size()
/// when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open) {
  const std::string& oc = toks[open].text;
  const std::string cc = oc == "(" ? ")" : oc == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == oc) ++depth;
    if (toks[i].text == cc && --depth == 0) return i + 1;
  }
  return toks.size();
}

[[nodiscard]] bool is_sync_type_token(const std::string& t) {
  return t == "mutex" || t == "recursive_mutex" || t == "shared_mutex" ||
         t == "timed_mutex" || t == "once_flag" ||
         t == "condition_variable" || t == "condition_variable_any";
}

[[nodiscard]] bool is_lock_token(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock" || t == "call_once" || t == "lock";
}

[[nodiscard]] bool is_growth_call(const std::string& t) {
  return t == "push_back" || t == "emplace_back" || t == "emplace" ||
         t == "insert" || t == "push" || t == "resize" || t == "reserve" ||
         t == "append" || t == "emplace_front" || t == "push_front";
}

[[nodiscard]] bool is_assign_op(const std::string& t) {
  return t == "=" || t == "+=" || t == "-=" || t == "*=" || t == "/=" ||
         t == "%=" || t == "|=" || t == "&=" || t == "^=";
}

/// Parse one variable-ish declaration statement starting at `i` (which
/// must point after any leading specifiers); returns the declared name
/// (last identifier before '=', ';', '[' or '{') or "" when the
/// statement does not look like a variable. `stop` bounds the scan.
std::string declared_name(const Cur& c, std::size_t i, std::size_t stop,
                          bool* saw_pointer) {
  std::string name;
  int angle = 0;
  for (std::size_t j = i; j < stop && j < c.toks.size(); ++j) {
    const std::string& t = c.text(j);
    if (t == "<") ++angle;
    if (t == ">") angle = angle > 0 ? angle - 1 : 0;
    if (angle > 0) continue;
    if (t == ";" || t == "=" || t == "{") break;
    if (t == "(") return "";  // function declaration/definition
    if (t == "*" && saw_pointer != nullptr) *saw_pointer = true;
    if (c.ident(j)) name = t;
  }
  return name;
}

struct ScopeFrame {
  enum class Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind;
  std::string name;
  std::size_t open;  ///< token index of the '{'
};

/// Extract RHS identifiers and calls from [i, stop): bare identifiers
/// (not preceded by '.'/'->', not immediately followed by '(') land in
/// idents; call targets land in calls.
void collect_rhs(const Cur& c, std::size_t i, std::size_t stop,
                 std::vector<std::string>* idents,
                 std::vector<std::string>* calls) {
  for (std::size_t j = i; j < stop && j < c.toks.size(); ++j) {
    if (!c.ident(j)) continue;
    const std::string& t = c.text(j);
    if (is_control_keyword(t) || is_type_keyword(t)) continue;
    const bool call = c.text(j + 1) == "(";
    if (call) {
      calls->push_back(t);
    } else if (idents->size() < 16) {  // cap: pathological expressions
      idents->push_back(t);
    }
  }
}

}  // namespace

FileSummary summarize(const std::string& path,
                      const std::vector<Token>& tokens) {
  FileSummary out;
  const Cur c{tokens};
  std::vector<ScopeFrame> scopes;

  auto enclosing_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeFrame::Kind::kClass) return it->name;
    }
    return "";
  };
  auto in_function = [&]() {
    // Nested statement blocks push anonymous kOther frames; any function
    // frame below them still means "inside a function body".
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeFrame::Kind::kFunction) return true;
      if (it->kind == ScopeFrame::Kind::kNamespace ||
          it->kind == ScopeFrame::Kind::kClass) {
        return false;
      }
    }
    return false;
  };

  // Pending function summary while inside its body.
  FunctionSummary fn;
  std::size_t fn_body_end = 0;  // token index one past the body's '}'

  auto summarize_statics_and_containers =
      [&](std::size_t i, std::size_t stmt_end, const std::string& owner,
          bool force_static) {
        // Specifier scan over the statement.
        bool st = force_static;
        bool tl = false;
        bool cst = false;
        bool atomic = false;
        bool sync = false;
        bool unordered = false;
        bool ordered_container = false;
        for (std::size_t j = i; j < stmt_end; ++j) {
          const std::string& t = c.text(j);
          if (t == "static") st = true;
          if (t == "thread_local") tl = true;
          if (t == "const" || t == "constexpr" || t == "constinit") {
            cst = true;
          }
          if (t == "atomic" || t == "atomic_bool" || t == "atomic_int") {
            atomic = true;
          }
          if (is_sync_type_token(t)) sync = true;
          if (t == "unordered_map" || t == "unordered_set" ||
              t == "unordered_multimap" || t == "unordered_multiset") {
            unordered = true;
          }
          if (t == "map" || t == "set" || t == "vector" || t == "deque" ||
              t == "multimap" || t == "multiset") {
            ordered_container = true;
          }
          if (t == "=") break;  // specifiers precede the initializer
        }
        bool pointer = false;
        const std::string name = declared_name(c, i, stmt_end, &pointer);
        if (name.empty()) return;
        // Class::name out-of-line definitions: qualifier right before
        // the declared name.
        std::string qual_owner = owner;
        for (std::size_t j = i; j + 2 < stmt_end; ++j) {
          if (c.text(j + 1) == "::" && c.text(j + 2) == name &&
              c.ident(j)) {
            qual_owner = c.text(j);
          }
        }
        if (st || tl) {
          out.globals.push_back({name, qual_owner, path, c.line(i), tl,
                                 atomic, cst, sync, pointer});
        } else if (owner.empty() && !in_function()) {
          // Namespace-scope non-static: still a process global.
          out.globals.push_back({name, qual_owner, path, c.line(i), tl,
                                 atomic, cst, sync, pointer});
        }
        if (unordered || ordered_container) {
          out.containers.push_back(
              {name, owner, path, c.line(i), unordered});
        }
      };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = c.text(i);

    // ---- scope tracking ----
    if (t == "}") {
      if (!scopes.empty()) {
        if (scopes.back().kind == ScopeFrame::Kind::kFunction &&
            i + 1 >= fn_body_end) {
          fn.line_end = c.line(i);
          out.functions.push_back(fn);
          fn = FunctionSummary{};
        }
        scopes.pop_back();
      }
      continue;
    }
    if (t == "{") {
      // Bare brace (statement block, aggregate initializer, lambda body
      // of a skipped construct): anonymous frame so '}' pops in balance.
      scopes.push_back({ScopeFrame::Kind::kOther, "", i});
      continue;
    }
    if (t == "namespace") {
      std::size_t j = i + 1;
      std::string name;
      while (c.ident(j) || c.text(j) == "::") {
        if (c.ident(j)) name += (name.empty() ? "" : "::") + c.text(j);
        ++j;
      }
      if (c.text(j) == "{") {
        scopes.push_back({ScopeFrame::Kind::kNamespace, name, j});
        i = j;
      }
      continue;
    }
    if ((t == "class" || t == "struct" || t == "union") && !in_function()) {
      // `class X final? : bases { ... }` — find the '{' before any ';'.
      std::size_t j = i + 1;
      std::string name = c.ident(j) ? c.text(j) : "";
      while (j < tokens.size() && c.text(j) != "{" && c.text(j) != ";") {
        // `class X;` fwd decl or `class X* p` usage — bail at ';'.
        if (c.text(j) == "(") break;  // e.g. macro use
        ++j;
      }
      if (c.text(j) == "{") {
        scopes.push_back({ScopeFrame::Kind::kClass, name, j});
        i = j;
      }
      continue;
    }
    if (t == "enum") {
      // Skip enum bodies entirely (enumerators are not variables).
      std::size_t j = i;
      while (j < tokens.size() && c.text(j) != "{" && c.text(j) != ";") ++j;
      if (c.text(j) == "{") j = skip_balanced(tokens, j) - 1;
      i = j;
      continue;
    }
    if (t == "#") {
      // Preprocessor: skip to end of line (tokens carry line numbers).
      const int line = c.line(i);
      std::size_t j = i + 1;
      while (j < tokens.size() && c.line(j) == line) ++j;
      i = j - 1;
      continue;
    }
    if (!in_function() &&
        (t == "using" || t == "typedef" || t == "friend")) {
      // Aliases/typedefs/friend declarations are not variables; skip the
      // statement so the declaration scan never misreads one.
      std::size_t j = i;
      while (j < tokens.size() && c.text(j) != ";") ++j;
      i = j;
      continue;
    }
    if (!in_function() && t == "template") {
      // Skip the parameter list; the templated class/function that
      // follows is indexed normally.
      std::size_t j = i + 1;
      if (c.text(j) == "<") {
        int depth = 0;
        while (j < tokens.size()) {
          if (c.text(j) == "<") ++depth;
          if (c.text(j) == ">" && --depth == 0) break;
          if (c.text(j) == ">>") {
            depth -= 2;
            if (depth <= 0) break;
          }
          ++j;
        }
      }
      i = j;
      continue;
    }

    // ---- inside a function body: fact extraction ----
    if (in_function()) {
      if (t == "HVC_PROF_SCOPE") fn.has_prof_scope = true;
      if (is_lock_token(t) && !(c.text(i - 1) == "." || c.text(i - 1) == "->"
                                ? t != "lock"
                                : false)) {
        // `.lock()` member calls and lock_guard declarations both count.
        fn.has_lock = true;
      }

      // `static` local declaration.
      if (t == "static") {
        std::size_t stmt_end = i;
        while (stmt_end < tokens.size() && c.text(stmt_end) != ";" &&
               c.text(stmt_end) != "{") {
          ++stmt_end;
        }
        summarize_statics_and_containers(i, stmt_end, fn.name, true);
        // Land ON the terminator: a ';' is inert, but a '{' (aggregate
        // initializer) must still push its anonymous frame so the
        // matching '}' does not pop the function scope.
        i = stmt_end - 1;
        continue;
      }

      // Range-for: `for ( decl : expr ) { body }`.
      if (t == "for" && c.text(i + 1) == "(") {
        const std::size_t open = i + 1;
        const std::size_t close = skip_balanced(tokens, open);
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = open; j + 1 < close; ++j) {
          const std::string& tj = c.text(j);
          if (tj == "(" || tj == "[" || tj == "{") ++depth;
          if (tj == ")" || tj == "]" || tj == "}") --depth;
          if (tj == ":" && depth == 1 && c.text(j - 1) != ":" &&
              c.text(j + 1) != ":") {
            colon = j;
            break;
          }
        }
        if (colon != 0) {
          // Iterated expression: first identifier after the colon
          // (handles `m`, `state.m`, `this->m`).
          std::string container;
          for (std::size_t j = colon + 1; j + 1 < close; ++j) {
            if (c.ident(j) && !is_type_keyword(c.text(j))) {
              container = c.text(j);
              if (c.text(j + 1) == "." || c.text(j + 1) == "->") {
                container = c.text(j + 2);  // member: the field name
              }
              break;
            }
          }
          // Loop variable(s): structured-binding idents inside [..], or
          // the last identifier before the colon. They carry the
          // container's values, so R10 seeds taint from them too.
          std::vector<std::string> loop_vars;
          bool in_binding = false;
          std::string last_ident;
          for (std::size_t j = open + 1; j < colon; ++j) {
            const std::string& tj = c.text(j);
            if (tj == "[") in_binding = true;
            if (tj == "]") in_binding = false;
            if (c.ident(j) && !is_type_keyword(tj)) {
              if (in_binding) {
                loop_vars.push_back(tj);
              } else {
                last_ident = tj;
              }
            }
          }
          if (loop_vars.empty() && !last_ident.empty()) {
            loop_vars.push_back(last_ident);
          }
          for (const auto& lv : loop_vars) fn.locals.insert(lv);
          if (!container.empty() && c.text(close) == "{") {
            const std::size_t body_end = skip_balanced(tokens, close);
            IterLoop loop;
            loop.container = container;
            loop.line = c.line(i);
            loop.writes = loop_vars;
            // Writes inside the loop body (assignments and appends).
            for (std::size_t j = close + 1; j + 1 < body_end; ++j) {
              if (!c.ident(j)) continue;
              const std::string& nm = c.text(j);
              if (is_type_keyword(nm) || is_control_keyword(nm)) continue;
              const std::string& nx = c.text(j + 1);
              if (is_assign_op(nx) && c.text(j - 1) != "." &&
                  c.text(j - 1) != "->") {
                loop.writes.push_back(nm);
              } else if ((nx == "." || nx == "->") &&
                         (is_growth_call(c.text(j + 2)) ||
                          c.text(j + 2) == "push_back")) {
                loop.writes.push_back(nm);
              }
            }
            fn.iter_loops.push_back(std::move(loop));
          }
        }
        i = close - 1;  // still walk the loop body for other facts
        continue;
      }

      if (c.ident(i)) {
        const std::string& prev = c.text(i - 1);
        const std::string& next = c.text(i + 1);
        const bool member_access = prev == "." || prev == "->";

        // Calls (also feeds alloc detection for make_unique/shared and
        // growth methods). Identifier arguments — and the receiver of a
        // member call — are captured for the taint pass.
        if (next == "(" && !is_control_keyword(t) && !is_type_keyword(t)) {
          CallSite cs{t, c.line(i), member_access, {}};
          if (member_access && c.ident(i - 2)) {
            cs.args.push_back(c.text(i - 2));
          }
          const std::size_t close = skip_balanced(tokens, i + 1);
          std::vector<std::string> arg_calls;
          collect_rhs(c, i + 2, close - 1, &cs.args, &arg_calls);
          fn.calls.push_back(std::move(cs));
          if (t == "make_unique" || t == "make_shared") {
            fn.allocs.push_back({t, c.line(i)});
          } else if (member_access && is_growth_call(t)) {
            fn.allocs.push_back({"." + t, c.line(i)});
          }
        } else if (next == "<" && (t == "make_unique" || t == "make_shared")) {
          fn.calls.push_back({t, c.line(i), member_access, {}});
          fn.allocs.push_back({t, c.line(i)});
        }

        // Local declarations: `Type name ...` where the previous token
        // is a type-ish ident / '>' / '*' / '&' and the next token ends
        // the declarator. Registers shadows so writes to them are not
        // mistaken for global writes.
        if (!member_access &&
            (next == "=" || next == ";" || next == "," || next == ")" ||
             next == "{") &&
            (c.text(i - 1) == ">" || c.text(i - 1) == "*" ||
             c.text(i - 1) == "&" || c.text(i - 1) == "&&" ||
             (c.ident(i - 1) && !is_control_keyword(prev)))) {
          if (c.ident(i - 1) || is_type_keyword(prev) ||
              c.text(i - 1) == ">" || c.text(i - 1) == "*" ||
              c.text(i - 1) == "&" || c.text(i - 1) == "&&") {
            fn.locals.insert(t);
          }
        }

        // Container declarations local to this function.
        if ((prev == ">" || c.ident(i - 1)) &&
            (next == ";" || next == "=" || next == "{" || next == "(")) {
          // Look back for the container keyword within this statement.
          std::size_t back = i;
          bool unordered = false;
          bool ordered = false;
          int steps = 0;
          while (back > 0 && steps < 24) {
            const std::string& bt = c.text(--back);
            if (bt == ";" || bt == "{" || bt == "}") break;
            if (bt == "unordered_map" || bt == "unordered_set" ||
                bt == "unordered_multimap" || bt == "unordered_multiset") {
              unordered = true;
              break;
            }
            if (bt == "map" || bt == "set" || bt == "vector") {
              ordered = true;
              break;
            }
            ++steps;
          }
          if (unordered || ordered) {
            out.containers.push_back(
                {t, fn.name, path, c.line(i), unordered});
          }
        }

        // Writes: `X = ...`, `X += ...`, `++X`, `X++`.
        if (is_assign_op(next) && next != "==" && prev != "==") {
          WriteSite w;
          w.name = t;
          w.line = c.line(i);
          w.member_access = member_access;
          if (prev == "::" && c.ident(i - 2)) {
            w.qualifier = c.text(i - 2);
            w.member_access = false;
          }
          if (next == "=") {
            w.null_assign = c.text(i + 2) == "nullptr" &&
                            (c.text(i + 3) == ";" || c.text(i + 3) == ")");
            w.this_assign = c.text(i + 2) == "this" &&
                            (c.text(i + 3) == ";" || c.text(i + 3) == ")");
          }
          fn.writes.push_back(w);

          // Assignment dataflow fact (R10): RHS window to the ';'.
          std::size_t stmt_end = i + 2;
          int depth = 0;
          while (stmt_end < tokens.size()) {
            const std::string& et = c.text(stmt_end);
            if (et == "(" || et == "[" || et == "{") ++depth;
            if (et == ")" || et == "]" || et == "}") {
              if (depth == 0) break;
              --depth;
            }
            if (et == ";" && depth == 0) break;
            ++stmt_end;
          }
          AssignFact a;
          a.dst = t;
          a.line = c.line(i);
          collect_rhs(c, i + 2, stmt_end, &a.rhs_idents, &a.rhs_calls);
          fn.assigns.push_back(std::move(a));
        } else if ((prev == "++" || prev == "--" || next == "++" ||
                    next == "--") &&
                   !member_access) {
          WriteSite w;
          w.name = t;
          w.line = c.line(i);
          fn.writes.push_back(w);
        }

        // Container append counts as assignment dataflow into the
        // container: `X.push_back(y)` taints X with y.
        if ((next == "." || next == "->") && is_growth_call(c.text(i + 2)) &&
            c.text(i + 3) == "(") {
          const std::size_t close = skip_balanced(tokens, i + 3);
          AssignFact a;
          a.dst = t;
          a.line = c.line(i);
          collect_rhs(c, i + 4, close - 1, &a.rhs_idents, &a.rhs_calls);
          fn.assigns.push_back(std::move(a));
        }

        // Self-guard detection: `X == this`, `this == X`, `X != this`.
        if ((next == "==" || next == "!=") && c.text(i + 2) == "this") {
          fn.self_guarded.insert(t);
        }
        if (t == "this" && (next == "==" || next == "!=") &&
            c.ident(i + 2)) {
          fn.self_guarded.insert(c.text(i + 2));
        }

        // Returns.
        if (t == "return") {
          std::size_t stmt_end = i + 1;
          int depth = 0;
          while (stmt_end < tokens.size()) {
            const std::string& et = c.text(stmt_end);
            if (et == "(" || et == "[" || et == "{") ++depth;
            if (et == ")" || et == "]" || et == "}") {
              if (depth == 0) break;
              --depth;
            }
            if (et == ";" && depth == 0) break;
            ++stmt_end;
          }
          if (stmt_end > i + 1) {
            ReturnFact r;
            r.line = c.line(i);
            collect_rhs(c, i + 1, stmt_end, &r.idents, &r.calls);
            fn.returns.push_back(std::move(r));
          }
          i = stmt_end;
          continue;
        }
      }
      // `new` expressions (R11 alloc site; R4 covers style separately).
      if (t == "new" && c.text(i - 1) != "operator") {
        fn.allocs.push_back({"new", c.line(i)});
      }
      continue;
    }

    // ---- namespace / class scope ----
    if (c.ident(i)) {
      // Operator definition: `operator <op> ( params ) [quals] { ... }`.
      // The name is not directly followed by '(' so the general detection
      // below misses it; without a function frame the body's locals would
      // leak into the global table.
      if (t == "operator") {
        std::size_t j = i + 1;
        std::string op;
        if (c.text(j) == "(" && c.text(j + 1) == ")") {
          op = "()";
          j += 2;
        } else if (c.text(j) == "[" && c.text(j + 1) == "]") {
          op = "[]";
          j += 2;
        } else {
          while (j < tokens.size() && !c.ident(j) && c.text(j) != "(") {
            op += c.text(j);
            ++j;
          }
          if (op.empty()) {  // conversion operator: `operator bool`, ...
            while (j < tokens.size() &&
                   (c.ident(j) || c.text(j) == "::")) {
              if (c.ident(j)) op = c.text(j);
              ++j;
            }
          }
        }
        if (c.text(j) == "(" && !op.empty()) {
          const std::size_t close = skip_balanced(tokens, j);
          std::size_t p = close;
          bool is_def = false;
          while (p < tokens.size()) {
            const std::string& pt = c.text(p);
            if (pt == "{") {
              is_def = true;
              break;
            }
            if (pt == ";" || pt == "=") break;
            if (pt == "(") {
              p = skip_balanced(tokens, p);
              continue;
            }
            ++p;
          }
          if (is_def) {
            fn = FunctionSummary{};
            fn.file = path;
            fn.line_begin = c.line(i);
            fn.name = "operator" + op;
            if (c.text(i - 1) == "::" && c.ident(i - 2)) {
              fn.owner_class = c.text(i - 2);
            }
            if (fn.owner_class.empty()) fn.owner_class = enclosing_class();
            fn.qualified = fn.owner_class.empty()
                               ? fn.name
                               : fn.owner_class + "::" + fn.name;
            for (std::size_t k = j + 1; k + 1 < close; ++k) {
              if (c.ident(k) && !is_type_keyword(c.text(k)) &&
                  (c.text(k + 1) == "," || c.text(k + 1) == ")" ||
                   c.text(k + 1) == "=")) {
                fn.locals.insert(c.text(k));
                fn.params.push_back(c.text(k));
              }
            }
            fn_body_end = skip_balanced(tokens, p);
            scopes.push_back({ScopeFrame::Kind::kFunction, fn.name, p});
            i = p;
            continue;
          }
          i = close - 1;
          continue;
        }
      }
      // Function definition: name '(' params ')' [quals] '{'. The name
      // may be qualified (Class::name) or a destructor (~X).
      const std::string& next = c.text(i + 1);
      if (next == "(" && !is_control_keyword(t) && !is_type_keyword(t)) {
        const std::size_t close = skip_balanced(tokens, i + 1);
        // Skim const/override/final/noexcept/-> trailing return; stop at
        // '{' (definition), ';'/'=' (declaration / default / delete),
        // ':' (ctor init list — still a definition). Only signature-ish
        // tokens may appear here; anything else (a stray ')', '||', …)
        // means this was a call inside a condition, not a definition.
        std::size_t p = close;
        bool ctor_init = false;
        bool signature_ok = true;
        while (p < tokens.size()) {
          const std::string& pt = c.text(p);
          if (pt == "{" || pt == ";" || pt == "=") break;
          if (pt == ":") {
            ctor_init = true;
            break;
          }
          if (pt == "(") {
            // A second paren group is only legal in a signature after
            // noexcept/alignas/decltype or an attribute-ish __macro; any
            // other '(' means the first group was a macro invocation or
            // call, not a parameter list.
            const std::string& before = c.text(p - 1);
            if (before == "noexcept" || before == "alignas" ||
                before == "decltype" || before.rfind("__", 0) == 0) {
              p = skip_balanced(tokens, p);
              continue;
            }
            signature_ok = false;
            break;
          }
          if (!(c.ident(p) || pt == "->" || pt == "::" || pt == "<" ||
                pt == ">" || pt == ">>" || pt == "&" || pt == "&&" ||
                pt == "*" || pt == "," || pt == "[" || pt == "]")) {
            signature_ok = false;
            break;
          }
          ++p;
        }
        if (!signature_ok) {
          i = close - 1;
          continue;
        }
        if (ctor_init) {
          // Skip the member-init list to its '{'.
          int depth = 0;
          while (p < tokens.size()) {
            const std::string& pt = c.text(p);
            if (pt == "(" || pt == "[") ++depth;
            if (pt == ")" || pt == "]") --depth;
            if (pt == "{" && depth == 0) break;
            ++p;
          }
        }
        if (p < tokens.size() && c.text(p) == "{") {
          fn = FunctionSummary{};
          fn.file = path;
          fn.line_begin = c.line(i);
          // Qualified name: walk back over `Ident ::` chains; '~' marks
          // a destructor.
          std::string name = t;
          std::string qualified = t;
          std::size_t q = i;
          while (q >= 2 && c.text(q - 1) == "::" && c.ident(q - 2)) {
            qualified = c.text(q - 2) + "::" + qualified;
            fn.owner_class = c.text(q - 2);
            q -= 2;
          }
          if (c.text(q - 1) == "~") {
            name = "~" + name;
            qualified =
                qualified.substr(0, qualified.size() - t.size()) + name;
          }
          fn.name = name;
          fn.qualified = qualified;
          if (fn.owner_class.empty()) fn.owner_class = enclosing_class();
          // Parameters are locals (and, in order, taint entry points).
          for (std::size_t j = i + 2; j + 1 < close; ++j) {
            if (c.ident(j) && !is_type_keyword(c.text(j)) &&
                (c.text(j + 1) == "," || c.text(j + 1) == ")" ||
                 c.text(j + 1) == "=")) {
              fn.locals.insert(c.text(j));
              fn.params.push_back(c.text(j));
            }
          }
          fn_body_end = skip_balanced(tokens, p);
          scopes.push_back({ScopeFrame::Kind::kFunction, fn.name, p});
          i = p;
          continue;
        }
        i = close - 1;
        continue;
      }

      // Variable / container declarations at namespace or class scope:
      // scan the statement once from its first token.
      if (i == 0 || c.text(i - 1) == ";" || c.text(i - 1) == "{" ||
          c.text(i - 1) == "}" || c.text(i - 1) == ":") {
        std::size_t stmt_end = i;
        int depth = 0;
        bool has_paren = false;
        while (stmt_end < tokens.size()) {
          const std::string& et = c.text(stmt_end);
          if (et == "(") has_paren = true;
          if (et == "<" ) ++depth;
          if (et == ">") depth = depth > 0 ? depth - 1 : 0;
          if ((et == ";" || et == "{") && depth == 0) break;
          ++stmt_end;
        }
        if (!has_paren && stmt_end < tokens.size() &&
            c.text(stmt_end) == ";") {
          const std::string owner = enclosing_class();
          summarize_statics_and_containers(i, stmt_end, owner, false);
          i = stmt_end;
          continue;
        }
      }
    }
  }
  // File ended inside an unterminated function (unbalanced braces):
  // keep what we have.
  if (in_function() && !fn.name.empty()) {
    fn.line_end = tokens.empty() ? 1 : tokens.back().line;
    out.functions.push_back(fn);
  }
  return out;
}

// ---- content hashing --------------------------------------------------

std::uint64_t content_hash(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

// ---- summary (de)serialization ----------------------------------------

namespace {

using obs::json::Value;

Value jstr(const std::string& s) {
  Value v;
  v.kind = Value::Kind::kString;
  v.str = s;
  return v;
}
Value jnum(double d) {
  Value v;
  v.kind = Value::Kind::kNumber;
  v.num = d;
  return v;
}
Value jbool(bool b) {
  Value v;
  v.kind = Value::Kind::kBool;
  v.boolean = b;
  return v;
}
Value jarr() {
  Value v;
  v.kind = Value::Kind::kArray;
  return v;
}
Value jobj() {
  Value v;
  v.kind = Value::Kind::kObject;
  return v;
}

Value strings_to_json(const std::vector<std::string>& xs) {
  Value a = jarr();
  for (const auto& x : xs) a.array.push_back(jstr(x));
  return a;
}
std::vector<std::string> strings_from_json(const Value* v) {
  std::vector<std::string> out;
  if (v == nullptr || !v->is_array()) return out;
  for (const auto& e : v->array) {
    if (e.is_string()) out.push_back(e.str);
  }
  return out;
}

}  // namespace

std::string summary_to_json(const TokenCache::FileData& fd) {
  Value root = jobj();
  root.object["hash"] = jstr(std::to_string(fd.hash));
  root.object["includes"] = strings_to_json(fd.includes);

  Value fns = jarr();
  for (const auto& f : fd.summary.functions) {
    Value v = jobj();
    v.object["name"] = jstr(f.name);
    v.object["qualified"] = jstr(f.qualified);
    v.object["owner"] = jstr(f.owner_class);
    v.object["begin"] = jnum(f.line_begin);
    v.object["end"] = jnum(f.line_end);
    v.object["prof"] = jbool(f.has_prof_scope);
    v.object["lock"] = jbool(f.has_lock);
    Value calls = jarr();
    for (const auto& cs : f.calls) {
      Value e = jarr();
      e.array.push_back(jstr(cs.name));
      e.array.push_back(jnum(cs.line));
      e.array.push_back(jbool(cs.member));
      e.array.push_back(strings_to_json(cs.args));
      calls.array.push_back(std::move(e));
    }
    v.object["calls"] = std::move(calls);
    v.object["params"] = strings_to_json(f.params);
    Value writes = jarr();
    for (const auto& w : f.writes) {
      Value e = jarr();
      e.array.push_back(jstr(w.name));
      e.array.push_back(jstr(w.qualifier));
      e.array.push_back(jnum(w.line));
      e.array.push_back(jnum((w.member_access ? 1 : 0) |
                             (w.null_assign ? 2 : 0) |
                             (w.this_assign ? 4 : 0)));
      writes.array.push_back(std::move(e));
    }
    v.object["writes"] = std::move(writes);
    Value allocs = jarr();
    for (const auto& a : f.allocs) {
      Value e = jarr();
      e.array.push_back(jstr(a.what));
      e.array.push_back(jnum(a.line));
      allocs.array.push_back(std::move(e));
    }
    v.object["allocs"] = std::move(allocs);
    v.object["locals"] = strings_to_json(
        std::vector<std::string>(f.locals.begin(), f.locals.end()));
    v.object["guarded"] = strings_to_json(std::vector<std::string>(
        f.self_guarded.begin(), f.self_guarded.end()));
    Value assigns = jarr();
    for (const auto& a : f.assigns) {
      Value e = jobj();
      e.object["dst"] = jstr(a.dst);
      e.object["ids"] = strings_to_json(a.rhs_idents);
      e.object["calls"] = strings_to_json(a.rhs_calls);
      e.object["line"] = jnum(a.line);
      assigns.array.push_back(std::move(e));
    }
    v.object["assigns"] = std::move(assigns);
    Value rets = jarr();
    for (const auto& r : f.returns) {
      Value e = jobj();
      e.object["ids"] = strings_to_json(r.idents);
      e.object["calls"] = strings_to_json(r.calls);
      e.object["line"] = jnum(r.line);
      rets.array.push_back(std::move(e));
    }
    v.object["returns"] = std::move(rets);
    Value loops = jarr();
    for (const auto& l : f.iter_loops) {
      Value e = jobj();
      e.object["container"] = jstr(l.container);
      e.object["line"] = jnum(l.line);
      e.object["writes"] = strings_to_json(l.writes);
      loops.array.push_back(std::move(e));
    }
    v.object["loops"] = std::move(loops);
    fns.array.push_back(std::move(v));
  }
  root.object["functions"] = std::move(fns);

  Value globals = jarr();
  for (const auto& g : fd.summary.globals) {
    Value v = jobj();
    v.object["name"] = jstr(g.name);
    v.object["owner"] = jstr(g.owner);
    v.object["line"] = jnum(g.line);
    v.object["flags"] = jnum((g.is_thread_local ? 1 : 0) |
                             (g.is_atomic ? 2 : 0) | (g.is_const ? 4 : 0) |
                             (g.is_sync ? 8 : 0) | (g.is_pointer ? 16 : 0));
    globals.array.push_back(std::move(v));
  }
  root.object["globals"] = std::move(globals);

  Value containers = jarr();
  for (const auto& cd : fd.summary.containers) {
    Value v = jobj();
    v.object["name"] = jstr(cd.name);
    v.object["owner"] = jstr(cd.owner);
    v.object["line"] = jnum(cd.line);
    v.object["unordered"] = jbool(cd.unordered);
    containers.array.push_back(std::move(v));
  }
  root.object["containers"] = std::move(containers);

  Value allows = jarr();
  for (const auto& [rule, line] : fd.allows.allows) {
    Value e = jarr();
    e.array.push_back(jstr(rule));
    e.array.push_back(jnum(line));
    allows.array.push_back(std::move(e));
  }
  root.object["allows"] = std::move(allows);
  root.object["file_allows"] = strings_to_json(std::vector<std::string>(
      fd.allows.file_allows.begin(), fd.allows.file_allows.end()));

  Value dirs = jarr();
  for (const auto& f : fd.directive_findings) {
    Value e = jobj();
    e.object["line"] = jnum(f.line);
    e.object["rule"] = jstr(f.rule);
    e.object["severity"] = jstr(severity_name(f.severity));
    e.object["message"] = jstr(f.message);
    dirs.array.push_back(std::move(e));
  }
  root.object["directives"] = std::move(dirs);

  return obs::json::serialize(root);
}

bool summary_from_json(std::string_view json, TokenCache::FileData* fd) {
  Value root;
  if (!obs::json::parse(json, &root) || !root.is_object()) return false;
  const Value* hash = root.find("hash");
  if (hash == nullptr || !hash->is_string()) return false;
  fd->hash = std::strtoull(hash->str.c_str(), nullptr, 10);
  fd->includes = strings_from_json(root.find("includes"));

  fd->summary = FileSummary{};
  if (const Value* fns = root.find("functions"); fns != nullptr) {
    for (const auto& v : fns->array) {
      FunctionSummary f;
      f.file = fd->path;
      f.name = v.string_or("name", "");
      f.qualified = v.string_or("qualified", "");
      f.owner_class = v.string_or("owner", "");
      f.line_begin = static_cast<int>(v.number_or("begin", 0));
      f.line_end = static_cast<int>(v.number_or("end", 0));
      const Value* prof = v.find("prof");
      f.has_prof_scope = prof != nullptr && prof->boolean;
      const Value* lock = v.find("lock");
      f.has_lock = lock != nullptr && lock->boolean;
      if (const Value* calls = v.find("calls"); calls != nullptr) {
        for (const auto& e : calls->array) {
          if (e.array.size() < 4) continue;
          f.calls.push_back({e.array[0].str,
                             static_cast<int>(e.array[1].num),
                             e.array[2].boolean,
                             strings_from_json(&e.array[3])});
        }
      }
      f.params = strings_from_json(v.find("params"));
      if (const Value* writes = v.find("writes"); writes != nullptr) {
        for (const auto& e : writes->array) {
          if (e.array.size() < 4) continue;
          WriteSite w;
          w.name = e.array[0].str;
          w.qualifier = e.array[1].str;
          w.line = static_cast<int>(e.array[2].num);
          const int flags = static_cast<int>(e.array[3].num);
          w.member_access = (flags & 1) != 0;
          w.null_assign = (flags & 2) != 0;
          w.this_assign = (flags & 4) != 0;
          f.writes.push_back(std::move(w));
        }
      }
      if (const Value* allocs = v.find("allocs"); allocs != nullptr) {
        for (const auto& e : allocs->array) {
          if (e.array.size() < 2) continue;
          f.allocs.push_back(
              {e.array[0].str, static_cast<int>(e.array[1].num)});
        }
      }
      for (const auto& l : strings_from_json(v.find("locals"))) {
        f.locals.insert(l);
      }
      for (const auto& g : strings_from_json(v.find("guarded"))) {
        f.self_guarded.insert(g);
      }
      if (const Value* assigns = v.find("assigns"); assigns != nullptr) {
        for (const auto& e : assigns->array) {
          AssignFact a;
          a.dst = e.string_or("dst", "");
          a.rhs_idents = strings_from_json(e.find("ids"));
          a.rhs_calls = strings_from_json(e.find("calls"));
          a.line = static_cast<int>(e.number_or("line", 0));
          f.assigns.push_back(std::move(a));
        }
      }
      if (const Value* rets = v.find("returns"); rets != nullptr) {
        for (const auto& e : rets->array) {
          ReturnFact r;
          r.idents = strings_from_json(e.find("ids"));
          r.calls = strings_from_json(e.find("calls"));
          r.line = static_cast<int>(e.number_or("line", 0));
          f.returns.push_back(std::move(r));
        }
      }
      if (const Value* loops = v.find("loops"); loops != nullptr) {
        for (const auto& e : loops->array) {
          IterLoop l;
          l.container = e.string_or("container", "");
          l.line = static_cast<int>(e.number_or("line", 0));
          l.writes = strings_from_json(e.find("writes"));
          f.iter_loops.push_back(std::move(l));
        }
      }
      fd->summary.functions.push_back(std::move(f));
    }
  }
  if (const Value* globals = root.find("globals"); globals != nullptr) {
    for (const auto& v : globals->array) {
      GlobalVar g;
      g.name = v.string_or("name", "");
      g.owner = v.string_or("owner", "");
      g.file = fd->path;
      g.line = static_cast<int>(v.number_or("line", 0));
      const int flags = static_cast<int>(v.number_or("flags", 0));
      g.is_thread_local = (flags & 1) != 0;
      g.is_atomic = (flags & 2) != 0;
      g.is_const = (flags & 4) != 0;
      g.is_sync = (flags & 8) != 0;
      g.is_pointer = (flags & 16) != 0;
      fd->summary.globals.push_back(std::move(g));
    }
  }
  if (const Value* containers = root.find("containers");
      containers != nullptr) {
    for (const auto& v : containers->array) {
      ContainerDecl cd;
      cd.name = v.string_or("name", "");
      cd.owner = v.string_or("owner", "");
      cd.file = fd->path;
      cd.line = static_cast<int>(v.number_or("line", 0));
      const Value* u = v.find("unordered");
      cd.unordered = u != nullptr && u->boolean;
      fd->summary.containers.push_back(std::move(cd));
    }
  }
  fd->allows = FileSuppressions{};
  if (const Value* allows = root.find("allows"); allows != nullptr) {
    for (const auto& e : allows->array) {
      if (e.array.size() < 2) continue;
      fd->allows.allows.insert(
          {e.array[0].str, static_cast<int>(e.array[1].num)});
    }
  }
  for (const auto& fa : strings_from_json(root.find("file_allows"))) {
    fd->allows.file_allows.insert(fa);
  }
  fd->directive_findings.clear();
  if (const Value* dirs = root.find("directives"); dirs != nullptr) {
    for (const auto& e : dirs->array) {
      Finding f;
      f.file = fd->path;
      f.line = static_cast<int>(e.number_or("line", 0));
      f.rule = e.string_or("rule", "");
      const std::string sev = e.string_or("severity", "error");
      f.severity = sev == "note" ? Severity::kNote
                   : sev == "warning" ? Severity::kWarning
                                      : Severity::kError;
      f.message = e.string_or("message", "");
      fd->directive_findings.push_back(std::move(f));
    }
  }
  return true;
}

// ---- TokenCache -------------------------------------------------------

namespace {

// Quoted includes only: angle includes are system headers, outside the
// repo include graph. Parsed from the raw text (the scrub pass blanks
// string contents, include targets included).
std::vector<std::string> parse_includes_raw(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line(text.data() + pos, eol - pos);
    line = trim(line);
    if (line.rfind("#", 0) == 0) {
      line.remove_prefix(1);
      line = trim(line);
      if (line.rfind("include", 0) == 0) {
        line.remove_prefix(7);
        line = trim(line);
        if (!line.empty() && line.front() == '"') {
          const std::size_t end = line.find('"', 1);
          if (end != std::string_view::npos) {
            out.emplace_back(line.substr(1, end - 1));
          }
        }
      }
    }
    pos = eol + 1;
  }
  return out;
}

}  // namespace

const TokenCache::FileData& TokenCache::get(const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  FileData fd;
  fd.path = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fd.readable = false;
    return files_.emplace(path, std::move(fd)).first->second;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  fd.text = buf.str();
  ++stats_.files_read;
  fd.hash = content_hash(fd.text);

  // Disk cache hit: restore the summary without tokenizing.
  const auto dit = disk_.find(path);
  if (dit != disk_.end() && dit->second.first == fd.hash) {
    FileData restored;
    restored.path = path;
    if (summary_from_json(dit->second.second, &restored) &&
        restored.hash == fd.hash) {
      restored.text = std::move(fd.text);
      ++stats_.disk_cache_hits;
      return files_.emplace(path, std::move(restored)).first->second;
    }
  }

  fd.scrubbed = scrub(fd.text);
  fd.tokens = tokenize(fd.scrubbed);
  fd.tokens_ready = true;
  ++stats_.tokenizations;
  fd.includes = parse_includes_raw(fd.text);
  fd.allows = collect_suppressions(path, fd.scrubbed, &fd.directive_findings);
  fd.summary = summarize(path, fd.tokens);
  return files_.emplace(path, std::move(fd)).first->second;
}

const TokenCache::FileData& TokenCache::ensure_tokens(
    const std::string& path) {
  const FileData& fd0 = get(path);
  if (fd0.tokens_ready || !fd0.readable) return fd0;
  FileData& fd = files_[path];
  fd.scrubbed = scrub(fd.text);
  fd.tokens = tokenize(fd.scrubbed);
  fd.tokens_ready = true;
  ++stats_.tokenizations;
  return fd;
}

void TokenCache::load_index_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::json::Value root;
  if (!obs::json::parse(buf.str(), &root) || !root.is_object()) return;
  const obs::json::Value* files = root.find("files");
  if (files == nullptr || !files->is_object()) return;
  for (const auto& [fpath, entry] : files->object) {
    if (!entry.is_object()) continue;
    const obs::json::Value* hash = entry.find("hash");
    const obs::json::Value* summary = entry.find("summary");
    if (hash == nullptr || !hash->is_string() || summary == nullptr ||
        !summary->is_string()) {
      continue;
    }
    disk_[fpath] = {std::strtoull(hash->str.c_str(), nullptr, 10),
                    summary->str};
  }
}

void TokenCache::save_index_cache(const std::string& path) const {
  std::string out = "{\"hvc-lint-index\":1,\"files\":{";
  bool first = true;
  for (const auto& [fpath, fd] : files_) {
    if (!fd.readable) continue;
    if (!first) out += ',';
    first = false;
    out += obs::json::quote(fpath) + ":{\"hash\":" +
           obs::json::quote(std::to_string(fd.hash)) +
           ",\"summary\":" + obs::json::quote(summary_to_json(fd)) + "}";
  }
  out += "}}";
  std::ofstream f(path, std::ios::binary);
  f << out;
}

}  // namespace hvc::lint
