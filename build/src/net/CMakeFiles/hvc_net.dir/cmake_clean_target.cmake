file(REMOVE_RECURSE
  "libhvc_net.a"
)
