// Tests for link emulation: service rate, queueing delay, droptail, loss
// models, and channel profiles.
#include <gtest/gtest.h>

#include <vector>

#include "channel/channel.hpp"
#include "channel/link.hpp"
#include "channel/loss.hpp"
#include "channel/profile.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace hvc::channel {
namespace {

using net::make_packet;
using net::PacketPtr;
using sim::milliseconds;
using sim::seconds;

PacketPtr data_packet(std::int64_t size, net::FlowId flow = 1) {
  auto p = make_packet();
  p->flow = flow;
  p->size_bytes = size;
  p->tp.len = static_cast<std::uint32_t>(size - net::kHeaderBytes);
  return p;
}

LinkConfig basic_config(sim::RateBps rate, sim::Duration delay) {
  LinkConfig cfg;
  cfg.capacity = trace::CapacityTrace::constant(rate);
  cfg.prop_delay = delay;
  return cfg;
}

TEST(Link, DeliversWithPropagationDelay) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(12), milliseconds(10)));
  sim::Time delivered_at = -1;
  link.set_receiver([&](PacketPtr) { delivered_at = s.now(); });
  link.send(data_packet(1500));
  s.run();
  // 1 ms serialization slot + 10 ms propagation.
  EXPECT_EQ(delivered_at, milliseconds(11));
}

TEST(Link, ServiceRateMatchesTrace) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(12), 0));
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  for (int i = 0; i < 3000; ++i) link.send(data_packet(1500));
  s.run_until(seconds(1));
  // 12 Mbps = 1000 MTU/s; allow the boundary opportunity.
  EXPECT_GE(delivered, 999);
  EXPECT_LE(delivered, 1001);
}

TEST(Link, SmallPacketsShareOpportunityInBytesMode) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(12), 0));
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  // 30 ACK-sized packets (50 B each) fit in one 1500 B opportunity.
  for (int i = 0; i < 30; ++i) link.send(data_packet(50));
  s.run_until(milliseconds(1));
  EXPECT_EQ(delivered, 30);
}

TEST(Link, PacketPerOpportunityModeIsStrict) {
  sim::Simulator s;
  auto cfg = basic_config(sim::mbps(12), 0);
  cfg.mode = ServiceMode::kPacketPerOpportunity;
  Link link(s, cfg);
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  for (int i = 0; i < 30; ++i) link.send(data_packet(50));
  s.run_until(milliseconds(5));
  EXPECT_EQ(delivered, 5);  // one per opportunity regardless of size
}

TEST(Link, DropTailWhenQueueFull) {
  sim::Simulator s;
  auto cfg = basic_config(sim::mbps(2), 0);
  cfg.queue_limit_bytes = 15000;  // 10 packets
  Link link(s, cfg);
  int delivered = 0;
  int dropped = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  link.set_drop_observer([&](PacketPtr) { ++dropped; });
  for (int i = 0; i < 100; ++i) link.send(data_packet(1500));
  s.run();
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(delivered + dropped, 100);
  EXPECT_EQ(link.stats().dropped_queue_packets, dropped);
}

TEST(Link, FifoOrderPreserved) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(12), milliseconds(5)));
  std::vector<std::uint64_t> order;
  link.set_receiver([&](PacketPtr p) { order.push_back(p->id); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 50; ++i) {
    auto p = data_packet(1500);
    sent.push_back(p->id);
    link.send(std::move(p));
  }
  s.run();
  EXPECT_EQ(order, sent);
}

TEST(Link, QueueDelayGrowsWithBacklog) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(12), 0));
  for (int i = 0; i < 100; ++i) link.send(data_packet(1500));
  // 100 packets at 1 ms each -> ~100 ms estimated queue delay.
  const auto est = link.estimated_queue_delay();
  EXPECT_NEAR(sim::to_millis(est), 100.0, 5.0);
}

TEST(Link, EstimatedDeliveryDelayIncludesPropagation) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(12), milliseconds(25)));
  const auto est = link.estimated_delivery_delay(1500);
  EXPECT_NEAR(sim::to_millis(est), 26.0, 1.0);
}

TEST(Link, ConservationNoLossNoDrops) {
  sim::Simulator s;
  Link link(s, basic_config(sim::mbps(60), milliseconds(5)));
  std::int64_t delivered_bytes = 0;
  link.set_receiver([&](PacketPtr p) { delivered_bytes += p->size_bytes; });
  std::int64_t sent_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t size = 100 + (i % 14) * 100;
    sent_bytes += size;
    link.send(data_packet(size));
  }
  s.run();
  EXPECT_EQ(delivered_bytes, sent_bytes);
  EXPECT_EQ(link.stats().delivered_packets, 500);
}

TEST(LossModel, BernoulliRateApproximatelyRespected) {
  LossModel m({.bernoulli = 0.1}, sim::Rng(77));
  int drops = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (m.should_drop()) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kTrials, 0.1, 0.01);
}

TEST(LossModel, LosslessNeverDrops) {
  LossModel m(LossConfig{}, sim::Rng(1));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m.should_drop());
}

TEST(LossModel, GilbertElliottBursts) {
  LossConfig cfg;
  cfg.ge_p_good_to_bad = 0.01;
  cfg.ge_p_bad_to_good = 0.2;
  cfg.ge_loss_in_bad = 0.5;
  LossModel m(cfg, sim::Rng(5));
  // Measure burstiness: conditional drop probability after a drop should
  // exceed the marginal drop probability.
  int drops = 0;
  int after_drop = 0;
  int after_drop_drops = 0;
  bool prev = false;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const bool d = m.should_drop();
    if (prev) {
      ++after_drop;
      if (d) ++after_drop_drops;
    }
    if (d) ++drops;
    prev = d;
  }
  const double marginal = static_cast<double>(drops) / kTrials;
  const double conditional =
      static_cast<double>(after_drop_drops) / after_drop;
  EXPECT_GT(conditional, marginal * 1.5);
}

TEST(Link, WireLossCountsSeparatelyFromQueueDrops) {
  sim::Simulator s;
  auto cfg = basic_config(sim::mbps(60), 0);
  cfg.loss.bernoulli = 0.2;
  cfg.loss_seed = 3;
  Link link(s, cfg);
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  for (int i = 0; i < 1000; ++i) link.send(data_packet(1500));
  s.run();
  EXPECT_EQ(link.stats().dropped_queue_packets, 0);
  EXPECT_GT(link.stats().dropped_wire_packets, 120);
  EXPECT_LT(link.stats().dropped_wire_packets, 280);
  EXPECT_EQ(delivered + link.stats().dropped_wire_packets, 1000);
}

TEST(ChannelProfiles, UrllcMatchesPaperNumbers) {
  const auto p = urllc_profile();
  EXPECT_EQ(p.rtt(), milliseconds(5) / 1 * 1);  // 5 ms RTT
  EXPECT_NEAR(p.capacity_down.average_rate_bps(), 2e6, 2e4);
  EXPECT_TRUE(p.reliable);
}

TEST(ChannelProfiles, EmbbConstantMatchesFig1Setup) {
  const auto p = embb_constant_profile();
  EXPECT_EQ(p.rtt(), milliseconds(50));
  EXPECT_NEAR(p.capacity_down.average_rate_bps(), 60e6, 60e4);
  EXPECT_FALSE(p.reliable);
}

TEST(HvcSet, SelectorsFindExpectedChannels) {
  sim::Simulator s;
  HvcSet set(s);
  set.add(embb_constant_profile());
  set.add(urllc_profile());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.first_reliable(), 1u);
  EXPECT_EQ(set.lowest_latency(), 1u);
  EXPECT_EQ(set.highest_bandwidth(Direction::kDownlink), 0u);
}

TEST(HvcSet, NoReliableChannelReturnsSize) {
  sim::Simulator s;
  HvcSet set(s);
  set.add(embb_constant_profile());
  EXPECT_EQ(set.first_reliable(), 1u);
}

TEST(Channel, CostAccruesWithTraffic) {
  sim::Simulator s;
  Channel ch(s, cisp_profile(milliseconds(8), sim::mbps(10), 1.0));
  int delivered = 0;
  ch.downlink().set_receiver([&](PacketPtr) { ++delivered; });
  // Pace the offered load at the link rate so droptail never engages.
  for (int i = 0; i < 1000; ++i) {
    s.at(milliseconds(i), [&] { ch.downlink().send(data_packet(1000)); });
  }
  s.run();
  // ~1 MB at $1/MB, minus ~0.1% bernoulli loss.
  EXPECT_GT(ch.cost_accrued(), 0.9);
  EXPECT_LE(ch.cost_accrued(), 1.0);
}

TEST(Link, TraceDrivenOutageStallsDelivery) {
  sim::Simulator s;
  // 100 ms of service, then a 500 ms gap, looping each second.
  std::vector<sim::Time> opps;
  for (int ms = 0; ms < 100; ++ms) opps.push_back(milliseconds(ms));
  for (int ms = 600; ms < 1000; ++ms) opps.push_back(milliseconds(ms));
  LinkConfig cfg;
  cfg.capacity = trace::CapacityTrace::from_opportunities(opps, seconds(1));
  cfg.prop_delay = 0;
  Link link(s, cfg);
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](PacketPtr) { arrivals.push_back(s.now()); });

  // Offer a packet at t=150 ms (inside the outage window).
  s.at(milliseconds(150), [&] { link.send(data_packet(1500)); });
  s.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_GE(arrivals[0], milliseconds(600));
}

}  // namespace
}  // namespace hvc::channel
