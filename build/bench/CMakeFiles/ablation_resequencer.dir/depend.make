# Empty dependencies file for ablation_resequencer.
# This may be replaced when dependencies are built.
