file(REMOVE_RECURSE
  "libhvc_steer.a"
)
