#include "obs/audit.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace hvc::obs {

thread_local SteeringAuditLog* SteeringAuditLog::active_ = nullptr;

void SteeringAuditLog::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, AuditRecord{});
  head_ = 0;
  total_ = 0;
  enabled_ = true;
  active_ = this;
}

void SteeringAuditLog::disable() {
  enabled_ = false;
  if (active_ == this) active_ = nullptr;
}

void SteeringAuditLog::record(AuditRecord rec) {
  ring_[head_] = std::move(rec);
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++total_;
}

std::size_t SteeringAuditLog::size() const {
  if (ring_.empty()) return 0;
  return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                               : ring_.size();
}

std::vector<AuditRecord> SteeringAuditLog::snapshot() const {
  std::vector<AuditRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::size_t start = total_ > ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

const char* type_name(std::uint8_t t) {
  switch (t) {
    case 0: return "data";
    case 1: return "ack";
    case 2: return "control";
    default: return "?";
  }
}

const char* dir_name(std::uint8_t d) {
  switch (d) {
    case kDirDown: return "down";
    case kDirUp: return "up";
    default: return "-";
  }
}

}  // namespace

std::string SteeringAuditLog::to_jsonl() const {
  std::string out;
  char buf[256];
  for (const AuditRecord& r : snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"t_us\":%.3f,\"pkt\":%" PRIu64 ",\"flow\":%" PRIu64
                  ",\"dir\":\"%s\",\"type\":\"%s\",\"prio\":%d,"
                  "\"bytes\":%u,\"policy\":",
                  static_cast<double>(r.at) / 1e3, r.packet_id, r.flow_id,
                  dir_name(r.direction), type_name(r.packet_type),
                  static_cast<int>(r.flow_priority), r.size_bytes);
    out += buf;
    out += json::quote(r.policy);
    if (r.app_priority >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"app_prio\":%d",
                    static_cast<int>(r.app_priority));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",\"ch\":%d",
                  static_cast<int>(r.chosen));
    out += buf;
    if (r.duplicates > 0) {
      std::snprintf(buf, sizeof(buf), ",\"dups\":%d",
                    static_cast<int>(r.duplicates));
      out += buf;
    }
    out += ",\"reason\":";
    out += json::quote(r.reason != nullptr ? r.reason : "unspecified");
    out += ",\"channels\":[";
    for (std::size_t i = 0; i < r.channels.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s{\"q\":%lld,\"d_ms\":%.3f}",
                    i > 0 ? "," : "",
                    static_cast<long long>(r.channels[i].queued_bytes),
                    r.channels[i].est_delay_ms);
      out += buf;
    }
    out += "]}\n";
  }
  return out;
}

ScopedSteeringAuditLog::ScopedSteeringAuditLog(SteeringAuditLog& log)
    : prev_active_(SteeringAuditLog::active_) {
  SteeringAuditLog::active_ = log.enabled() ? &log : nullptr;
}

ScopedSteeringAuditLog::~ScopedSteeringAuditLog() {
  SteeringAuditLog::active_ = prev_active_;
}

}  // namespace hvc::obs
