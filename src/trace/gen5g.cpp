#include "trace/gen5g.hpp"

#include <algorithm>
#include <stdexcept>

namespace hvc::trace {

using sim::Duration;
using sim::RateBps;
using sim::Time;

CapacityTrace generate_markov_trace(const MarkovRateModel& model,
                                    Duration duration, std::uint64_t seed,
                                    std::int64_t mtu) {
  if (model.states.empty()) {
    throw std::invalid_argument("markov trace: no states");
  }
  if (model.initial_state >= model.states.size()) {
    throw std::invalid_argument("markov trace: bad initial state");
  }
  for (const auto& s : model.states) {
    if (s.next_probs.size() != model.states.size()) {
      throw std::invalid_argument(
          "markov trace: transition row size != state count");
    }
  }
  sim::Rng rng(seed);
  std::size_t state = model.initial_state;
  Time now = 0;
  Time state_until = 0;
  double byte_credit = 0.0;
  std::vector<Time> opps;

  auto draw_dwell = [&](const RateState& s) -> Duration {
    auto d = static_cast<Duration>(
        rng.exponential(static_cast<double>(s.mean_dwell)));
    if (s.max_dwell > 0) d = std::min(d, s.max_dwell);
    return std::max<Duration>(d, model.step);
  };
  state_until = draw_dwell(model.states[state]);

  while (now < duration) {
    if (now >= state_until) {
      // Transition according to the current state's distribution.
      const auto& probs = model.states[state].next_probs;
      double u = rng.uniform();
      std::size_t next = probs.size() - 1;
      for (std::size_t i = 0; i < probs.size(); ++i) {
        if (u < probs[i]) {
          next = i;
          break;
        }
        u -= probs[i];
      }
      state = next;
      state_until = now + draw_dwell(model.states[state]);
    }
    const auto& s = model.states[state];
    double rate = static_cast<double>(s.mean_rate);
    if (s.rate_jitter_frac > 0.0) {
      rate *= std::max(0.0, 1.0 + rng.normal(0.0, s.rate_jitter_frac));
    }
    // Accumulate deliverable bytes over this step; emit one opportunity per
    // MTU of accumulated credit, spread evenly across the step.
    const double step_bytes =
        rate / 8.0 * sim::to_seconds(model.step);
    const double before = byte_credit;
    byte_credit += step_bytes;
    const auto n = static_cast<std::int64_t>(byte_credit /
                                             static_cast<double>(mtu)) -
                   static_cast<std::int64_t>(before /
                                             static_cast<double>(mtu));
    for (std::int64_t i = 0; i < n; ++i) {
      const Time at =
          now + model.step * (i + 1) / (n + 1);  // spaced within the step
      if (at < duration) opps.push_back(at);
    }
    now += model.step;
  }
  return CapacityTrace::from_opportunities(std::move(opps), duration, mtu);
}

const char* to_string(FiveGProfile p) {
  switch (p) {
    case FiveGProfile::kLowbandStationary: return "lowband-stationary";
    case FiveGProfile::kLowbandDriving: return "lowband-driving";
    case FiveGProfile::kMmWaveDriving: return "mmwave-driving";
  }
  return "unknown";
}

MarkovRateModel five_g_model(FiveGProfile profile) {
  using sim::mbps;
  using sim::kbps;
  using sim::milliseconds;
  MarkovRateModel m;
  switch (profile) {
    case FiveGProfile::kLowbandStationary:
      // Steady ~55 Mbps with mild fading; no outages.
      m.states = {
          {"good", mbps(58), 0.08, milliseconds(500), 0, {0.85, 0.15}},
          {"fade", mbps(35), 0.12, milliseconds(200), milliseconds(800),
           {0.9, 0.1}},
      };
      break;
    case FiveGProfile::kLowbandDriving:
      // Mobility: alternation between good service, degraded cell-edge
      // service and short handover outages. Calibrated so a loaded link
      // sees ~236 ms p98 RTT (DChannel's published Lowband driving stat).
      m.states = {
          {"good", mbps(48), 0.10, milliseconds(2500), 0,
           {0.0, 0.85, 0.15}},
          {"edge", mbps(9), 0.25, milliseconds(900), milliseconds(4000),
           {0.55, 0.0, 0.45}},
          {"handover", kbps(250), 0.30, milliseconds(350), milliseconds(900),
           {0.35, 0.65, 0.0}},
      };
      break;
    case FiveGProfile::kMmWaveDriving:
      // Very high peak rate but hard blockage: multi-second outages that
      // produce the paper's 6.4 s eMBB-only frame-latency tail.
      m.states = {
          {"los", mbps(550), 0.10, milliseconds(3500), 0,
           {0.0, 0.55, 0.45}},
          {"nlos", mbps(60), 0.25, milliseconds(900), milliseconds(3000),
           {0.6, 0.0, 0.4}},
          {"blocked", kbps(40), 0.5, milliseconds(1400), milliseconds(5200),
           {0.5, 0.5, 0.0}},
      };
      break;
  }
  return m;
}

CapacityTrace make_5g_trace(FiveGProfile profile, Duration duration,
                            std::uint64_t seed, std::int64_t mtu) {
  return generate_markov_trace(five_g_model(profile), duration, seed, mtu);
}

Duration embb_base_owd(FiveGProfile profile) {
  switch (profile) {
    case FiveGProfile::kLowbandStationary:
    case FiveGProfile::kLowbandDriving:
      return sim::milliseconds(25);  // ~50 ms base RTT (Fig. 1 setup)
    case FiveGProfile::kMmWaveDriving:
      return sim::milliseconds(15);  // ~30 ms base RTT
  }
  return sim::milliseconds(25);
}

}  // namespace hvc::trace
