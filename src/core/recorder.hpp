// Periodic channel-state recorder: samples per-channel queue depths and
// the capacity hint on a fixed cadence into time series. Useful for
// understanding *why* a steering policy behaved as it did (e.g. plotting
// URLLC backlog against frame latency), and for CSV export.
#pragma once

#include <string>
#include <vector>

#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hvc::core {

class ChannelRecorder {
 public:
  /// Starts sampling immediately, every `interval`, until `stop()` or the
  /// simulation ends.
  ChannelRecorder(net::TwoHostNetwork& net, sim::Duration interval);

  void stop() { running_ = false; }

  struct ChannelSeries {
    std::string name;
    sim::TimeSeries down_queue_bytes;
    sim::TimeSeries up_queue_bytes;
    sim::TimeSeries down_capacity_mbps;
  };

  [[nodiscard]] const std::vector<ChannelSeries>& series() const {
    return series_;
  }

  /// CSV dump: time_ms, then (down_queue, up_queue, capacity) per channel.
  [[nodiscard]] std::string to_csv() const;

 private:
  void sample();

  net::TwoHostNetwork& net_;
  sim::Duration interval_;
  bool running_ = true;
  std::vector<ChannelSeries> series_;
};

}  // namespace hvc::core
