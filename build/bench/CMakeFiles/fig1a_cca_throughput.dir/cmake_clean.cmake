file(REMOVE_RECURSE
  "CMakeFiles/fig1a_cca_throughput.dir/fig1a_cca_throughput.cpp.o"
  "CMakeFiles/fig1a_cca_throughput.dir/fig1a_cca_throughput.cpp.o.d"
  "fig1a_cca_throughput"
  "fig1a_cca_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_cca_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
