file(REMOVE_RECURSE
  "libhvc_quic.a"
)
