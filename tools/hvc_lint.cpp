// hvc_lint: run the repo's determinism & simulation-safety lint pass
// (src/lint) over one or more source trees.
//
//   hvc_lint [options] <file-or-dir>...
//     --json                machine-readable output (findings + counts)
//     --sarif <file|->      also write a SARIF 2.1.0 report (for CI
//                           code-scanning upload); "-" = stdout
//     --compile-check       also run the R6 header self-sufficiency check
//                           (compiles each header in isolation; skipped
//                           with a note when no compiler is on PATH)
//     --compiler <cc>       compiler for --compile-check (default: c++)
//     -I <dir>              include dir for --compile-check (repeatable)
//     --no-semantic         per-file rules only (skip R9-R11)
//     --hotpath-depth <n>   R11 call-edge radius (default 1)
//     --diff <ref>          incremental: lint only files changed since
//                           <ref> (git diff --name-only) plus their
//                           reverse-includers; the semantic index still
//                           covers the whole tree
//     --changed <file>      like --diff but with an explicit file
//                           (repeatable; no git needed)
//     --baseline <file>     drop findings covered by this baseline JSON
//     --write-baseline <f>  write the current findings as a baseline to
//                           <f> and exit 0
//     --index-cache <file>  load/save the on-disk symbol index (JSON
//                           keyed on content hashes)
//     --fix                 print a unified diff converting flagged
//                           unordered_map/set declarations to std::map/
//                           set (origin declarations of unordered-taint
//                           findings); never touches files by itself
//     --in-place            with --fix: apply the edits to the files
//     --stats               print index/cache counters to stderr
//     --list-rules          print the rule table and exit
//
// Exit status: 0 clean (notes allowed), 1 findings at warning or worse,
// 2 usage / IO error. scripts/check.sh lint is the canonical invocation.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "lint/lint.hpp"
#include "lint/rules_semantic.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--json] [--sarif <file|->] [--compile-check] "
      "[--compiler <cc>] [-I <dir>]... [--no-semantic] "
      "[--hotpath-depth <n>] [--diff <ref>] [--changed <file>]... "
      "[--baseline <file>] [--write-baseline <file>] "
      "[--index-cache <file>] [--fix [--in-place]] [--stats] "
      "[--list-rules] <file-or-dir>...\n",
      argv0);
  return 2;
}

/// `git diff --name-only <ref>` -> source files. Returns false when git
/// fails (bad ref, not a repo).
bool git_changed_files(const std::string& ref,
                       std::vector<std::string>* out) {
  const std::string cmd = "git diff --name-only " + ref + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");  // NOLINT
  if (pipe == nullptr) return false;
  char buf[4096];
  std::string text;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) text += buf;
  const int rc = pclose(pipe);
  if (rc != 0) return false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    for (const char* ext : {".hpp", ".h", ".cpp", ".cc"}) {
      const std::string e = ext;
      if (line.size() > e.size() &&
          line.compare(line.size() - e.size(), e.size(), e) == 0) {
        out->push_back(line);
        break;
      }
    }
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  hvc::lint::Options opts;
  bool json = false;
  bool fix = false;
  bool in_place = false;
  bool stats_flag = false;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string diff_ref;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      if (++i >= argc) return usage(argv[0]);
      sarif_path = argv[i];
    } else if (arg == "--compile-check") {
      opts.compile_check = true;
    } else if (arg == "--compiler") {
      if (++i >= argc) return usage(argv[0]);
      opts.compiler = argv[i];
    } else if (arg == "-I") {
      if (++i >= argc) return usage(argv[0]);
      opts.include_dirs.push_back(argv[i]);
    } else if (arg == "--no-semantic") {
      opts.semantic = false;
    } else if (arg == "--hotpath-depth") {
      if (++i >= argc) return usage(argv[0]);
      opts.hotpath_depth = std::atoi(argv[i]);
    } else if (arg == "--diff") {
      if (++i >= argc) return usage(argv[0]);
      diff_ref = argv[i];
    } else if (arg == "--changed") {
      if (++i >= argc) return usage(argv[0]);
      opts.changed_files.push_back(argv[i]);
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage(argv[0]);
      write_baseline_path = argv[i];
    } else if (arg == "--index-cache") {
      if (++i >= argc) return usage(argv[0]);
      opts.index_cache_path = argv[i];
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--in-place") {
      in_place = true;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : hvc::lint::rules()) {
        std::printf("%-28s %-8s %s\n", r.name,
                    hvc::lint::severity_name(r.severity), r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);
  if (in_place && !fix) {
    std::fprintf(stderr, "hvc_lint: --in-place requires --fix\n");
    return 2;
  }

  for (const auto& root : roots) {
    std::error_code ec;
    if (!std::filesystem::exists(root, ec) || ec) {
      std::fprintf(stderr, "hvc_lint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }

  if (!diff_ref.empty()) {
    std::vector<std::string> changed;
    if (!git_changed_files(diff_ref, &changed)) {
      std::fprintf(stderr, "hvc_lint: git diff --name-only %s failed\n",
                   diff_ref.c_str());
      return 2;
    }
    if (changed.empty() && opts.changed_files.empty()) {
      // Nothing changed: report clean without walking the tree.
      if (json) std::printf("%s\n", hvc::lint::to_json({}).c_str());
      else std::printf("hvc_lint: no source changes since %s\n",
                       diff_ref.c_str());
      return 0;
    }
    opts.changed_files.insert(opts.changed_files.end(), changed.begin(),
                              changed.end());
  }

  hvc::lint::TreeStats stats;
  std::vector<hvc::lint::Finding> findings =
      hvc::lint::lint_tree(roots, opts, &stats);

  if (!write_baseline_path.empty()) {
    const std::string text = hvc::lint::baseline_to_json(
        hvc::lint::baseline_from_findings(findings));
    if (!write_file(write_baseline_path, text + "\n")) {
      std::fprintf(stderr, "hvc_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "hvc_lint: baseline written to %s\n",
                 write_baseline_path.c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hvc_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    hvc::lint::Baseline baseline;
    if (!hvc::lint::baseline_from_json(text, &baseline)) {
      std::fprintf(stderr, "hvc_lint: malformed baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    findings = hvc::lint::apply_baseline(std::move(findings), baseline);
  }

  if (fix) {
    hvc::lint::TokenCache cache;
    const std::vector<hvc::lint::FixEdit> edits =
        hvc::lint::propose_fixes(findings, cache);
    if (edits.empty()) {
      std::fprintf(stderr, "hvc_lint: nothing to fix\n");
      return hvc::lint::has_failure(findings) ? 1 : 0;
    }
    std::fputs(hvc::lint::to_unified_diff(edits).c_str(), stdout);
    if (in_place) {
      const int n = hvc::lint::apply_fixes(edits);
      std::fprintf(stderr, "hvc_lint: rewrote %d file%s\n", n,
                   n == 1 ? "" : "s");
    }
    return hvc::lint::has_failure(findings) ? 1 : 0;
  }

  if (!sarif_path.empty() &&
      !write_file(sarif_path, hvc::lint::to_sarif(findings) + "\n")) {
    std::fprintf(stderr, "hvc_lint: cannot write %s\n",
                 sarif_path.c_str());
    return 2;
  }

  if (stats_flag) {
    std::fprintf(stderr,
                 "hvc_lint: %d files, %d read, %d tokenized, "
                 "%d memo hits, %d index-cache hits\n",
                 stats.files, stats.files_read, stats.tokenizations,
                 stats.memo_hits, stats.disk_cache_hits);
  }

  if (json) {
    std::printf("%s\n", hvc::lint::to_json(findings).c_str());
  } else {
    std::fputs(hvc::lint::to_text(findings).c_str(), stdout);
    if (findings.empty()) {
      std::printf("hvc_lint: clean (%zu root%s)\n", roots.size(),
                  roots.size() == 1 ? "" : "s");
    }
  }
  return hvc::lint::has_failure(findings) ? 1 : 0;
}
