// Semantic-analysis substrate for hvc_lint (src/lint): a lightweight,
// dependency-free C++ indexer that turns every file into a token stream
// plus a *file summary* — function definitions with their call sites,
// writes, allocation sites and taint facts; global/static variable
// declarations with their thread-safety qualifiers; container-typed
// declarations; and the file's #include list. The cross-TU passes
// (graph.hpp, rules_semantic.hpp) run entirely over these summaries, so
// a file whose content hash is unchanged never needs re-tokenizing —
// the TokenCache memoizes per-file work in memory and can persist it to
// an index-cache JSON file keyed on content hashes.
//
// Soundness: this is a heuristic parser, not a compiler. It has no
// preprocessor (macro bodies are seen as written; conditional-compilation
// branches are all visited), no overload resolution (calls link by name),
// and no type checking (declarations are recognized structurally). The
// rules built on top are tuned so that imprecision shows up as a missed
// finding or an easily-allowed false positive, never as silent
// corruption of the analysis. See DESIGN.md §5.11 for the full caveat
// list.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lint.hpp"

namespace hvc::lint {

// ---- comment/string scrubbing (shared with the per-file R1–R8 rules) --

/// The comment/string-stripped view of one file. `code` preserves every
/// character position (stripped spans become spaces; string/char
/// delimiters are kept so "a literal is present here" stays detectable),
/// so offsets map 1:1 onto the original text. `comments` holds the
/// comment text, same positions, for directive parsing.
struct Scrubbed {
  std::string code;
  std::string comments;
  std::vector<std::size_t> line_starts;  ///< offset of each line's first char

  [[nodiscard]] int line_of(std::size_t offset) const;
  [[nodiscard]] std::size_t line_count() const { return line_starts.size(); }
  [[nodiscard]] std::string_view code_line(int line) const;
  [[nodiscard]] std::string_view comment_line(int line) const;
};

[[nodiscard]] Scrubbed scrub(std::string_view text);

// ---- suppression directives -------------------------------------------

struct FileSuppressions {
  /// (rule, line) pairs the file explicitly allows.
  std::set<std::pair<std::string, int>> allows;
  std::set<std::string> file_allows;

  [[nodiscard]] bool suppressed(const std::string& rule, int line) const {
    return file_allows.count(rule) > 0 || allows.count({rule, line}) > 0;
  }
};

/// Parse every suppression directive — `allow(...)` and
/// `allow-file(...)` forms.
/// Malformed/unjustified/unknown-rule directives become findings (never
/// themselves suppressible). Directives on a comment-only line cover the
/// next code line.
[[nodiscard]] FileSuppressions collect_suppressions(
    const std::string& path, const Scrubbed& sc,
    std::vector<Finding>* findings);

// ---- tokens -----------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;
};

/// Tokenize scrubbed code. Multi-character operators that the summarizer
/// cares about (::, ->, ==, !=, <=, >=, +=, -=, *=, /=, |=, &=, ++, --,
/// &&, ||) come out as single tokens.
[[nodiscard]] std::vector<Token> tokenize(const Scrubbed& sc);

// ---- per-file semantic summary ----------------------------------------

/// A global or static variable: namespace-scope, class-static member, or
/// function-local static. The R9 race rules key off the qualifiers.
struct GlobalVar {
  std::string name;        ///< unqualified ("active_")
  std::string owner;       ///< enclosing class, or function for locals
  std::string file;
  int line = 0;
  bool is_thread_local = false;
  bool is_atomic = false;
  bool is_const = false;   ///< const/constexpr anywhere in the specifiers
  bool is_sync = false;    ///< mutex/once_flag/condition_variable-typed
  bool is_pointer = false;
};

/// A container-typed declaration (local, member, or global); R10 resolves
/// range-for iteration targets against these.
struct ContainerDecl {
  std::string name;
  std::string owner;       ///< enclosing function ("" = class/ns scope)
  std::string file;
  int line = 0;
  bool unordered = false;  ///< unordered_map/unordered_set
};

struct CallSite {
  std::string name;        ///< unqualified callee name
  int line = 0;
  bool member = false;     ///< x.f() / x->f()
  /// Identifier arguments (and, for member calls, the receiver): the
  /// R10 taint pass checks these against the caller's tainted set.
  std::vector<std::string> args;
};

struct WriteSite {
  std::string name;        ///< assigned identifier (unqualified)
  std::string qualifier;   ///< "Class" for Class::name writes, else ""
  int line = 0;
  bool member_access = false;  ///< obj.x / obj->x (never a global)
  bool null_assign = false;    ///< exactly `name = nullptr ;`
  bool this_assign = false;    ///< exactly `name = this ;`
};

struct AllocSite {
  std::string what;  ///< "new", "make_unique", ".push_back", ...
  int line = 0;
};

/// One `dst` gets a value derived from `rhs_idents` / calls to
/// `rhs_calls` (assignment, compound assignment, or container append).
struct AssignFact {
  std::string dst;
  std::vector<std::string> rhs_idents;
  std::vector<std::string> rhs_calls;
  int line = 0;
};

struct ReturnFact {
  std::vector<std::string> idents;
  std::vector<std::string> calls;
  int line = 0;
};

/// A range-for over a named container: `for (... : C)`. Writes recorded
/// inside the loop body are listed so R10 can seed taint when C resolves
/// to an unordered container.
struct IterLoop {
  std::string container;            ///< iterated identifier
  int line = 0;
  std::vector<std::string> writes;  ///< vars assigned/appended in the body
};

struct FunctionSummary {
  std::string name;        ///< unqualified ("run_sweep", "steer", "~Foo")
  std::string qualified;   ///< as written ("PacketTracer::disable")
  std::string owner_class; ///< from the qualifier or enclosing class
  std::string file;
  int line_begin = 0;
  int line_end = 0;
  bool has_prof_scope = false;  ///< lexically contains HVC_PROF_SCOPE
  bool has_lock = false;        ///< lock_guard/unique_lock/scoped_lock/
                                ///< call_once/lock() appears in the body
  std::vector<CallSite> calls;
  std::vector<WriteSite> writes;
  std::vector<AllocSite> allocs;
  std::vector<std::string> params;     ///< parameter names, in order
  std::set<std::string> locals;        ///< params + local declarations
  std::set<std::string> self_guarded;  ///< names compared ==/!= this
  std::vector<AssignFact> assigns;
  std::vector<ReturnFact> returns;
  std::vector<IterLoop> iter_loops;
};

struct FileSummary {
  std::vector<FunctionSummary> functions;
  std::vector<GlobalVar> globals;
  std::vector<ContainerDecl> containers;
};

/// Summarize one tokenized file. Exposed for unit tests; production code
/// goes through TokenCache.
[[nodiscard]] FileSummary summarize(const std::string& path,
                                    const std::vector<Token>& tokens);

// ---- memoized per-file analysis ---------------------------------------

/// FNV-1a over the file bytes; the index-cache key.
[[nodiscard]] std::uint64_t content_hash(std::string_view text);

/// Everything the engine ever derives from one file, computed at most
/// once per process (the PR-4-era scanner re-read and re-tokenized each
/// header once per including TU; every consumer now shares this cache).
/// Entries restored from an on-disk index cache carry the summary,
/// includes, and suppressions but no token stream; `ensure_tokens()`
/// upgrades them on demand (only files that need the per-file R1–R8
/// rules pay for it).
class TokenCache {
 public:
  struct FileData {
    std::string path;
    bool readable = true;
    std::uint64_t hash = 0;
    std::string text;
    Scrubbed scrubbed;
    std::vector<Token> tokens;
    bool tokens_ready = false;
    std::vector<std::string> includes;  ///< quoted includes, as written
    FileSummary summary;
    FileSuppressions allows;
    std::vector<Finding> directive_findings;
  };

  TokenCache() = default;

  /// Memoized per-file analysis. Never returns null; unreadable files
  /// come back with readable=false.
  const FileData& get(const std::string& path);

  /// Re-run tokenization for a cache-restored entry (no-op otherwise).
  const FileData& ensure_tokens(const std::string& path);

  /// Load/save the on-disk index cache: {"files": {path: {"hash": h,
  /// "summary": ...}}}. Load is best-effort (a missing or stale file is
  /// simply a cold cache); entries are validated against the current
  /// content hash at get() time.
  void load_index_cache(const std::string& path);
  void save_index_cache(const std::string& path) const;

  struct Stats {
    int files_read = 0;
    int tokenizations = 0;
    int memo_hits = 0;        ///< get() served from in-memory memo
    int disk_cache_hits = 0;  ///< summaries restored from the index cache
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::map<std::string, FileData> files_;
  /// path -> (hash, serialized summary JSON) restored from disk.
  std::map<std::string, std::pair<std::uint64_t, std::string>> disk_;
  Stats stats_;
};

/// Serialize/deserialize one FileSummary (+ includes + suppressions) for
/// the on-disk index cache. Exposed for round-trip tests.
[[nodiscard]] std::string summary_to_json(const TokenCache::FileData& fd);
[[nodiscard]] bool summary_from_json(std::string_view json,
                                     TokenCache::FileData* fd);

}  // namespace hvc::lint
