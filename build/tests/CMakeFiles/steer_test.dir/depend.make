# Empty dependencies file for steer_test.
# This may be replaced when dependencies are built.
