#include "sim/stats.hpp"

#include <cmath>

namespace hvc::sim {

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::stddev() const {
  // Two-pass form. The textbook sum-of-squares shortcut cancels
  // catastrophically for large-mean/low-variance samples (microsecond
  // timestamps: mean^2 ~ 1e18 swamps a variance of 1), so it is avoided.
  const auto n = static_cast<double>(samples_.size());
  if (n < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double v : samples_) {
    const double d = v - m;
    acc += d * d;
  }
  const double var = acc / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Summary::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Summary::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> Summary::cdf() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  out.reserve(samples_.size());
  const auto n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

double TimeSeries::mean_in(Time from, Time to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= from && p.t < to) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<TimeSeries::Point> TimeSeries::bucketed(Duration width) const {
  std::vector<Point> out;
  if (points_.empty() || width <= 0) return out;
  Time bucket_start = 0;
  double sum = 0.0;
  std::size_t n = 0;
  double last = points_.front().value;
  for (const auto& p : points_) {
    while (p.t >= bucket_start + width) {
      if (n > 0) last = sum / static_cast<double>(n);
      out.push_back({bucket_start, last});
      bucket_start += width;
      sum = 0.0;
      n = 0;
    }
    sum += p.value;
    ++n;
  }
  if (n > 0) out.push_back({bucket_start, sum / static_cast<double>(n)});
  return out;
}

void WindowedMax::update(Time now, double v) {
  while (!q_.empty() && q_.back().value <= v) q_.pop_back();
  q_.push_back({now, v});
  while (!q_.empty() && q_.front().t < now - window_) q_.pop_front();
}

void WindowedMin::update(Time now, double v) {
  while (!q_.empty() && q_.back().value >= v) q_.pop_back();
  q_.push_back({now, v});
  while (!q_.empty() && q_.front().t < now - window_) q_.pop_front();
}

}  // namespace hvc::sim
