// Periodic channel-state recorder: samples per-channel queue depths and
// the capacity hint on a fixed cadence into time series. Useful for
// understanding *why* a steering policy behaved as it did (e.g. plotting
// URLLC backlog against frame latency), and for CSV export.
//
// The recorder is a consumer of the obs layer: each sample also publishes
// channel.<name>.{down,up}.queue_bytes and channel.<name>.down.capacity_mbps
// gauges into MetricsRegistry::current(), so bench manifests capture the
// final channel state alongside the counters.
#pragma once

#include <string>
#include <vector>

#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hvc::core {

class ChannelRecorder {
 public:
  /// Starts sampling immediately, every `interval`, until `stop()` or the
  /// simulation ends.
  ChannelRecorder(net::TwoHostNetwork& net, sim::Duration interval);

  void stop() { running_ = false; }

  struct ChannelSeries {
    std::string name;
    sim::TimeSeries down_queue_bytes;
    sim::TimeSeries up_queue_bytes;
    sim::TimeSeries down_capacity_mbps;
  };

  [[nodiscard]] const std::vector<ChannelSeries>& series() const {
    return series_;
  }

  /// CSV dump: time_ms, then (down_queue, up_queue, capacity) per channel.
  [[nodiscard]] std::string to_csv() const;

 private:
  void sample();

  net::TwoHostNetwork& net_;
  sim::Duration interval_;
  bool running_ = true;
  std::vector<ChannelSeries> series_;

  struct ChannelGauges {
    obs::Gauge* down_queue = nullptr;
    obs::Gauge* up_queue = nullptr;
    obs::Gauge* down_capacity = nullptr;
  };
  std::vector<ChannelGauges> gauges_;
};

}  // namespace hvc::core
