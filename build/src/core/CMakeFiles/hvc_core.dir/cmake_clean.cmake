file(REMOVE_RECURSE
  "CMakeFiles/hvc_core.dir/recorder.cpp.o"
  "CMakeFiles/hvc_core.dir/recorder.cpp.o.d"
  "CMakeFiles/hvc_core.dir/scenario.cpp.o"
  "CMakeFiles/hvc_core.dir/scenario.cpp.o.d"
  "libhvc_core.a"
  "libhvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
