// Ablation E (§3.3): background-flow interference sweep. The paper: "as
// few as two background flows ... can cause as much as a 138 ms increase
// in PLT". We sweep the number of background JSON flow pairs and measure
// mean PLT for plain DChannel vs the flow-priority variant.
#include <cstdio>

#include "app/web/browser.hpp"
#include "bench/bench_util.hpp"
#include "core/scenario.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_background_flows");
  obs.set_seed(2023);
  bench::print_header(
      "Ablation E: PLT vs number of background flow pairs (Lowband "
      "stationary)");
  bench::print_row(
      {"bg pairs", "dchannel PLT", "delta", "dchannel+prio", "delta"});

  const auto corpus = app::web::generate_corpus({.pages = 20, .seed = 2023});
  double base_plain = 0.0;
  double base_prio = 0.0;

  for (int pairs = 0; pairs <= 4; ++pairs) {
    double means[2];
    for (int variant = 0; variant < 2; ++variant) {
      auto cfg = core::ScenarioConfig::traced(
          trace::FiveGProfile::kLowbandStationary, "dchannel",
          sim::seconds(120), 42);
      const bool prio = variant == 1;
      cfg.up_factory = cfg.down_factory = [prio] {
        auto tuned = steer::DChannelConfig::web_tuned();
        tuned.use_flow_priority = prio;
        return std::make_unique<steer::DChannelPolicy>(tuned);
      };
      // run_web supports one bg pair; extra pairs are added manually via
      // a custom harness here.
      core::Scenario sc(cfg);
      transport::TcpConfig bg_cfg;
      bg_cfg.annotate_app_info = true;
      bg_cfg.flow_priority = 1;
      std::vector<std::unique_ptr<app::web::BackgroundJsonFlow>> flows;
      for (int i = 0; i < pairs; ++i) {
        flows.push_back(std::make_unique<app::web::BackgroundJsonFlow>(
            sc.client(), sc.server(),
            app::web::BackgroundJsonFlow::Kind::kUpload, 5000, bg_cfg));
        flows.push_back(std::make_unique<app::web::BackgroundJsonFlow>(
            sc.client(), sc.server(),
            app::web::BackgroundJsonFlow::Kind::kDownload, 10000, bg_cfg));
      }
      for (auto& f : flows) f->start();

      sim::Summary plt;
      app::web::BrowserConfig browser;
      for (const auto& page : corpus) {
        for (int load = 0; load < 4; ++load) {
          auto session = std::make_unique<app::web::PageLoadSession>(
              sc.client(), sc.server(), page, browser, nullptr);
          session->start();
          const sim::Time deadline = sc.sim().now() + sim::seconds(60);
          while (!session->finished() && sc.sim().now() < deadline) {
            sc.sim().run_until(std::min(
                deadline, sc.sim().now() + sim::milliseconds(20)));
          }
          plt.add(session->finished() ? sim::to_millis(session->plt())
                                      : 60000.0);
          sc.sim().run_for(sim::milliseconds(250));
        }
      }
      means[variant] = plt.mean();
    }
    if (pairs == 0) {
      base_plain = means[0];
      base_prio = means[1];
    }
    bench::print_row({std::to_string(pairs), bench::fmt(means[0]),
                      "+" + bench::fmt(means[0] - base_plain),
                      bench::fmt(means[1]),
                      "+" + bench::fmt(means[1] - base_prio)});
  }
  std::printf(
      "\nShape check (paper): background flows inflate PLT for the\n"
      "application-agnostic policy; flow priorities keep the damage flat.\n");
  return 0;
}
