// R10 seed: cross-function taint — the producer returns a value derived
// from unordered iteration, the consumer exports it.
namespace fx10c {

std::string fx10c_first_key() {
  std::unordered_set<std::string> keys;
  std::string got;
  for (const auto& key : keys) {
    got = key;
  }
  return got;
}

void fx10c_report() {
  std::string head = fx10c_first_key();
  serialize(head);
}

}  // namespace fx10c
