// hvc_run — execute one scenario file and print/export its metrics.
//
//   hvc_run <scenario.json> [--out <prefix>] [--trace <path>]
//
// Prints the headline metrics to stdout and writes three artifacts next
// to the chosen prefix (default: bench/out/<scenario name>, so generated
// files stay out of the repo root):
//   <prefix>.results.csv    one-row aggregated CSV (same formatter as
//                           hvc_sweep, so single runs and sweeps join)
//   <prefix>.results.jsonl  full detail incl. the obs snapshot
//   <prefix>.metrics.csv    the obs::MetricsRegistry snapshot alone
// With --trace, the packet lifecycle tracer is enabled and its Chrome
// trace (chrome://tracing / Perfetto) is written to <path>. When the
// scenario's "telemetry" block is on, <prefix>.telemetry.jsonl (and with
// audit, <prefix>.audit.jsonl) appear too — see hvc_report.
//
// Exit codes: 0 success, 1 run error, 2 bad usage / invalid spec.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/results.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "obs/metrics.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hvc_run <scenario.json> [--out <prefix>] "
               "[--trace <path>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;
  std::string path;
  std::string prefix;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) return usage();
      prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) return usage();
      trace_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  exp::ScenarioSpec spec;
  try {
    spec = exp::ScenarioSpec::from_file(path);
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_run: %s\n", e.what());
    return 2;
  }
  if (prefix.empty()) prefix = exp::default_out_prefix(spec.name);

  std::printf("scenario %s: workload=%s seed=%llu channels=%zu "
              "policy=%s/%s\n",
              spec.name.c_str(), spec.workload.c_str(),
              static_cast<unsigned long long>(spec.seed),
              spec.channels.size(), spec.up_policy.label().c_str(),
              spec.down_policy.label().c_str());

  exp::RunOptions opts;
  opts.out_prefix = prefix;
  opts.trace_path = trace_path;
  exp::RunResult result = exp::run_scenario(spec, opts);
  if (!result.error.empty()) {
    std::fprintf(stderr, "hvc_run: run failed: %s\n", result.error.c_str());
    return 1;
  }

  for (const auto& [name, value] : result.metrics) {
    std::printf("  %-32s %s\n", name.c_str(),
                obs::json::number(value).c_str());
  }
  std::printf("wall: %.0f ms\n", result.wall_ms);

  try {
    const std::vector<exp::RunResult> runs = {result};
    exp::write_file(prefix + ".results.csv", exp::to_csv(runs));
    exp::write_file(prefix + ".results.jsonl", exp::to_jsonl(runs));
    exp::write_file(prefix + ".metrics.csv",
                    obs::snapshot_to_csv(result.obs));
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_run: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %s.results.csv, %s.results.jsonl, %s.metrics.csv\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());
  if (spec.telemetry.enabled) {
    std::printf("wrote %s.telemetry.jsonl%s%s\n", prefix.c_str(),
                spec.telemetry.audit ? ", " : "",
                spec.telemetry.audit ? (prefix + ".audit.jsonl").c_str() : "");
  }
  if (!trace_path.empty()) std::printf("wrote %s\n", trace_path.c_str());
  return 0;
}
