// R9 seed: a function-local static is still shared across sweep worker
// threads; run_sweep_shard is the other recognized entry point.
namespace fx9f {

int fx9f_next_id() {
  static int counter = 0;
  counter += 1;
  return counter;
}

void run_sweep_shard() { fx9f_next_id(); }

}  // namespace fx9f
