// hvc_sweep — expand a sweep file into its run grid and execute it on a
// thread pool.
//
//   hvc_sweep <sweep.json> [-j N] [--out <prefix>] [--dry-run]
//             [--shard K/N]
//   hvc_sweep --merge --out <prefix> <shard.results.jsonl>...
//
// Progress goes to stderr; the aggregated results land in
// <prefix>.results.csv / <prefix>.results.jsonl (default prefix:
// bench/out/<sweep name>). Output bytes are independent of -j (see
// src/exp/sweep.hpp), so `diff` between a -j1 and -j8 run of the same
// sweep is empty.
//
// --shard K/N runs only grid positions i with i % N == K (0-based) and
// writes <prefix>.shardKofN.results.{csv,jsonl} with *global* run
// indices. --merge reassembles shard JSONL files into the canonical
// <prefix>.results.{csv,jsonl}; because every run is isolated and the
// JSONL rows round-trip exactly, the merged files are byte-identical to
// an unsharded run of the same sweep, whatever order the shard files
// are given in.
//
// Exit codes: 0 all runs succeeded, 1 at least one run errored (or a
// merge found gaps/duplicates), 2 bad usage / invalid spec.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/results.hpp"
#include "exp/sweep.hpp"
#include "obs/prof.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hvc_sweep <sweep.json> [-j N] [--out <prefix>] "
               "[--dry-run] [--shard K/N]\n"
               "       hvc_sweep --merge --out <prefix> "
               "<shard.results.jsonl>...\n");
  return 2;
}

/// "K/N" with 0 <= K < N.
bool parse_shard(const char* arg, std::size_t* index, std::size_t* count) {
  const char* slash = std::strchr(arg, '/');
  if (slash == nullptr || slash == arg || slash[1] == '\0') return false;
  char* end = nullptr;
  const long k = std::strtol(arg, &end, 10);
  if (end != slash || k < 0) return false;
  const long n = std::strtol(slash + 1, &end, 10);
  if (*end != '\0' || n <= 0 || k >= n) return false;
  *index = static_cast<std::size_t>(k);
  *count = static_cast<std::size_t>(n);
  return true;
}

int merge_shards(const std::string& prefix,
                 const std::vector<std::string>& paths) {
  using namespace hvc;
  if (prefix.empty() || paths.empty()) return usage();
  std::vector<exp::RunResult> all;
  try {
    for (const auto& p : paths) {
      auto part = exp::Report::parse_results(exp::read_file(p));
      for (auto& r : part) all.push_back(std::move(r));
    }
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_sweep: %s\n", e.what());
    return 2;
  }
  std::sort(all.begin(), all.end(),
            [](const exp::RunResult& a, const exp::RunResult& b) {
              return a.index < b.index;
            });
  // The merged grid must be exactly 0..n-1, once each: a duplicate means
  // overlapping shards, a gap means a missing shard file.
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].index != i) {
      std::fprintf(stderr,
                   "hvc_sweep: merge %s run index %zu (expected %zu) — "
                   "%s shard?\n",
                   all[i].index < i ? "duplicate" : "gap at",
                   all[i].index, i,
                   all[i].index < i ? "overlapping" : "missing");
      return 1;
    }
  }
  int failed = 0;
  for (const auto& r : all) {
    if (!r.error.empty()) ++failed;
  }
  try {
    exp::write_file(prefix + ".results.csv", exp::to_csv(all));
    exp::write_file(prefix + ".results.jsonl", exp::to_jsonl(all));
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_sweep: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "merged %zu shard files -> %s.results.csv, "
               "%s.results.jsonl (%zu runs, %d failed)\n",
               paths.size(), prefix.c_str(), prefix.c_str(), all.size(),
               failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;
  std::string path;
  std::string prefix;
  std::vector<std::string> merge_inputs;
  int jobs = 1;
  bool dry_run = false;
  bool merge = false;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-j") == 0) {
      if (i + 1 >= argc) return usage();
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) return usage();
    } else if (std::strncmp(argv[i], "-j", 2) == 0 && argv[i][2] != '\0') {
      jobs = std::atoi(argv[i] + 2);
      if (jobs < 1) return usage();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) return usage();
      prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      if (i + 1 >= argc || !parse_shard(argv[++i], &shard_index, &shard_count)) {
        return usage();
      }
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (merge) {
      merge_inputs.push_back(argv[i]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (merge) return merge_shards(prefix, merge_inputs);
  if (path.empty()) return usage();

  exp::SweepSpec sweep;
  std::vector<exp::ExpandedRun> grid;
  try {
    sweep = exp::SweepSpec::from_file(path);
    grid = exp::expand(sweep);
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_sweep: %s\n", e.what());
    return 2;
  }
  if (prefix.empty()) prefix = exp::default_out_prefix(sweep.name);

  std::fprintf(stderr, "sweep %s: %zu runs", sweep.name.c_str(), grid.size());
  for (const auto& axis : sweep.axes) {
    std::fprintf(stderr, " %s[%zu]", axis.path.c_str(), axis.values.size());
  }
  if (shard_count > 1) {
    std::fprintf(stderr, ", shard %zu/%zu", shard_index, shard_count);
  }
  std::fprintf(stderr, ", -j %d\n", jobs);

  if (dry_run) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (i % shard_count != shard_index) continue;
      std::fprintf(stderr, "  run %zu:", i);
      for (const auto& [k, v] : grid[i].params) {
        std::fprintf(stderr, " %s=%s", k.c_str(), v.c_str());
      }
      std::fprintf(stderr, "\n");
    }
    return 0;
  }

  // Wall-clock progress stays on stderr only: the aggregated result
  // files must remain byte-identical across -j and across machines.
  // obs::prof::now_ns() is the sanctioned host-clock accessor (clock
  // island), so the ETA needs no wallclock lint carve-out.
  const std::uint64_t sweep_start = hvc::obs::prof::now_ns();
  const auto results = exp::run_sweep_shard(
      sweep, jobs, shard_index, shard_count,
      [sweep_start](const exp::RunResult& r, std::size_t done,
                    std::size_t total) {
        const double elapsed_s =
            static_cast<double>(hvc::obs::prof::now_ns() - sweep_start) *
            1e-9;
        const double rate = elapsed_s > 0 ? static_cast<double>(done) /
                                                elapsed_s
                                          : 0.0;
        const double eta_s =
            rate > 0 ? static_cast<double>(total - done) / rate : 0.0;
        std::fprintf(stderr,
                     "[%zu/%zu] run %zu %s (%.0f ms) | elapsed %.1fs, "
                     "%.2f runs/s, eta %.0fs%s%s\n",
                     done, total, r.index, r.name.c_str(), r.wall_ms,
                     elapsed_s, rate, eta_s,
                     r.error.empty() ? "" : " ERROR: ",
                     r.error.empty() ? "" : r.error.c_str());
      },
      prefix);

  int failed = 0;
  for (const auto& r : results) {
    if (!r.error.empty()) ++failed;
  }

  std::string out = prefix;
  if (shard_count > 1) {
    out += ".shard" + std::to_string(shard_index) + "of" +
           std::to_string(shard_count);
  }
  try {
    exp::write_file(out + ".results.csv", exp::to_csv(results));
    exp::write_file(out + ".results.jsonl", exp::to_jsonl(results));
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_sweep: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "wrote %s.results.csv, %s.results.jsonl (%zu runs, %d "
               "failed)\n",
               out.c_str(), out.c_str(), results.size(), failed);
  return failed == 0 ? 0 : 1;
}
