#include "app/video/svc.hpp"

#include <algorithm>

namespace hvc::app::video {

SvcEncoder::SvcEncoder(SvcConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {}

EncodedFrame SvcEncoder::next_frame(sim::Time now) {
  EncodedFrame f;
  f.index = next_index_++;
  f.keyframe = cfg_.keyframe_interval > 0 &&
               f.index % cfg_.keyframe_interval == 0;
  f.capture_time = now;
  f.layer_bytes.reserve(cfg_.layer_bitrates.size());
  for (const auto rate : cfg_.layer_bitrates) {
    const double mean_bytes =
        static_cast<double>(rate) / 8.0 / cfg_.fps;
    double scale = 1.0 + rng_.normal(0.0, cfg_.size_jitter);
    if (f.keyframe) scale *= cfg_.keyframe_scale;
    scale = std::max(scale, 0.25);
    f.layer_bytes.push_back(
        std::max<std::int64_t>(static_cast<std::int64_t>(mean_bytes * scale),
                               200));
  }
  return f;
}

double ssim_for_layers(int layers_decoded) {
  switch (layers_decoded) {
    case 0: return 0.40;   // undecodable: frozen/concealed frame
    case 1: return 0.880;  // 400 kbps base layer
    case 2: return 0.944;  // + 4.1 Mbps enhancement
    default: return 0.972; // full 12 Mbps
  }
}

double ssim_for_layers(int layers_decoded, sim::Rng& rng) {
  const double base = ssim_for_layers(layers_decoded);
  return std::clamp(base + rng.normal(0.0, 0.006), 0.0, 1.0);
}

}  // namespace hvc::app::video
