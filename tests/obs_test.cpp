// Tests for the observability layer: packet tracer ring semantics and
// exports, metrics registry instruments, run manifests, delay
// decomposition, and trace determinism across identical runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/logger.hpp"
#include "steer/dchannel.hpp"
#include "transport/tcp.hpp"

namespace hvc {
namespace {

using obs::EventKind;
using obs::PacketTracer;
using sim::milliseconds;
using sim::seconds;

/// RAII guard: every test that enables the global tracer must leave it
/// disabled for the rest of the binary.
struct TracerGuard {
  explicit TracerGuard(std::size_t capacity = 1024) {
    PacketTracer::instance().enable(capacity);
  }
  ~TracerGuard() { PacketTracer::instance().disable(); }
};

TEST(Tracer, DisabledMeansNullActivePointer) {
  ASSERT_EQ(PacketTracer::active(), nullptr);
  {
    TracerGuard guard;
    EXPECT_NE(PacketTracer::active(), nullptr);
    EXPECT_TRUE(PacketTracer::instance().enabled());
  }
  EXPECT_EQ(PacketTracer::active(), nullptr);
  EXPECT_EQ(PacketTracer::instance().capacity(), 0u);
}

TEST(Tracer, DisablingAnotherTracerKeepsScopedRunRecording) {
  // Regression: disable() used to clear the thread's active() binding
  // unconditionally. A run executing inside a ScopedPacketTracer (the
  // sweep engine wraps every run in one) would silently stop recording
  // when anything disabled the global instance on the same thread —
  // e.g. a bench ObsSession finishing, or an earlier run's teardown.
  // Control: the same single event recorded with no interference.
  // (Set up first — enable() itself binds the thread's active().)
  PacketTracer undisturbed;
  undisturbed.enable(64);
  undisturbed.record(EventKind::kEnqueue, 100, 1, 1, 0, obs::kDirDown, 1500);
  undisturbed.disable();

  PacketTracer run_tracer;
  run_tracer.enable(64);
  obs::ScopedPacketTracer scope(run_tracer);
  ASSERT_EQ(PacketTracer::active(), &run_tracer);

  PacketTracer::instance().disable();
  ASSERT_EQ(PacketTracer::active(), &run_tracer)
      << "disabling a different tracer must not unbind the scoped one";

  if (auto* tr = PacketTracer::active()) {
    tr->record(EventKind::kEnqueue, 100, 1, 1, 0, obs::kDirDown, 1500);
  }
  EXPECT_EQ(run_tracer.size(), 1u);

  // The export must be byte-identical to the undisturbed control run.
  EXPECT_EQ(run_tracer.to_jsonl(), undisturbed.to_jsonl());

  // Disabling the tracer that *is* bound still clears the binding.
  run_tracer.disable();
  EXPECT_EQ(PacketTracer::active(), nullptr);
}

TEST(Tracer, EventsComeBackInRecordingOrder) {
  TracerGuard guard(64);
  auto& tr = PacketTracer::instance();
  for (std::uint64_t i = 0; i < 10; ++i) {
    tr.record(EventKind::kEnqueue, static_cast<sim::Time>(i * 100), i, 1, 0,
              obs::kDirDown, 1500);
  }
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].packet_id, i);
    EXPECT_EQ(events[i].at, static_cast<sim::Time>(i * 100));
  }
  EXPECT_EQ(tr.total_recorded(), 10u);
}

TEST(Tracer, RingWrapsKeepingNewestAndCountsTotal) {
  TracerGuard guard(8);
  auto& tr = PacketTracer::instance();
  for (std::uint64_t i = 0; i < 20; ++i) {
    tr.record(EventKind::kTx, static_cast<sim::Time>(i), i, 1, 0,
              obs::kDirUp, 100);
  }
  EXPECT_EQ(tr.total_recorded(), 20u);
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained event is #12, newest is #19, in order.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].packet_id, 12 + i);
  }
}

TEST(Tracer, ClearDropsEventsButStaysEnabled) {
  TracerGuard guard(8);
  auto& tr = PacketTracer::instance();
  tr.record(EventKind::kRx, 5, 1, 1, 0, obs::kDirDown, 100);
  tr.clear();
  EXPECT_EQ(tr.total_recorded(), 0u);
  EXPECT_EQ(tr.snapshot().size(), 0u);
  EXPECT_TRUE(tr.enabled());
}

TEST(Tracer, JsonlLinesAreEachValidJsonObjects) {
  TracerGuard guard(64);
  auto& tr = PacketTracer::instance();
  tr.set_channel_name(0, "eMBB");
  tr.record(EventKind::kEnqueue, 1000, 1, 2, 0, obs::kDirDown, 1500);
  tr.record(EventKind::kDrop, 2000, 1, 2, 0, obs::kDirDown, 1500,
            obs::kDropQueueFull);
  tr.record(EventKind::kSteer, 3000, 4, 2, 1, obs::kDirUp, 80, 1);
  tr.record(EventKind::kRetx, 4000, 5, 2, obs::kNoChannel, obs::kNoDirection,
            1000, 2, sim::milliseconds(12));
  const std::string jsonl = tr.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // every line newline-terminated
    const std::string line = jsonl.substr(start, end - start);
    obs::json::Value v;
    ASSERT_TRUE(obs::json::parse(line, &v)) << line;
    EXPECT_TRUE(v.is_object());
    EXPECT_NE(v.find("t_us"), nullptr);
    EXPECT_NE(v.find("ev"), nullptr);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(jsonl.find("\"detail\":\"queue_full\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"duplicates\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"aux_us\":12000"), std::string::npos);
}

TEST(Tracer, ChromeTraceIsWellFormedJsonWithSpans) {
  TracerGuard guard(64);
  auto& tr = PacketTracer::instance();
  tr.set_channel_name(0, "eMBB");
  tr.set_channel_name(1, "URLLC");
  // A full lifecycle on channel 0 down: should produce an "X" span.
  tr.record(EventKind::kEnqueue, sim::microseconds(10), 1, 1, 0,
            obs::kDirDown, 1500);
  tr.record(EventKind::kDequeue, sim::microseconds(500), 1, 1, 0,
            obs::kDirDown, 1500);
  tr.record(EventKind::kTx, sim::microseconds(500), 1, 1, 0, obs::kDirDown,
            1500);
  tr.record(EventKind::kRx, sim::microseconds(5500), 1, 1, 0, obs::kDirDown,
            1500);
  const std::string chrome = tr.to_chrome_trace();
  ASSERT_TRUE(obs::json::valid(chrome)) << chrome.substr(0, 400);

  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(chrome, &doc));
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_span = false;
  bool saw_metadata = false;
  for (const auto& e : events->array) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "X") saw_span = true;
    if (ph == "M") saw_metadata = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_metadata);
  EXPECT_NE(chrome.find("eMBB"), std::string::npos);
}

TEST(Metrics, CounterGaugeFindOrCreateIsStable) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("a.b");
  obs::Counter& c2 = reg.counter("a.b");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  c2.inc();
  EXPECT_EQ(c1.value(), 4);

  obs::Gauge& g = reg.gauge("x");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 2.5);

  reg.reset_values();
  EXPECT_EQ(c1.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(&reg.counter("a.b"), &c1);  // registration survives reset
}

TEST(Metrics, HistogramBucketEdgesAreHalfOpen) {
  obs::Histogram h({1.0, 2.0, 5.0});
  // counts: [<1), [1,2), [2,5), [5,inf)
  h.add(0.5);
  h.add(0.999);
  h.add(1.0);   // exactly an edge lands in the bucket it opens
  h.add(1.999);
  h.add(2.0);
  h.add(4.999);
  h.add(5.0);   // overflow
  h.add(100.0);
  const auto& counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.count(), 8);
  EXPECT_DOUBLE_EQ(h.summary().max(), 100.0);
}

TEST(Metrics, SnapshotFlattensHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc(7);
  auto& h = reg.histogram("lat", {1.0, 10.0});
  h.add(0.5);
  h.add(5.0);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("c"), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.mean"), 2.75);
  EXPECT_TRUE(snap.contains("lat.p95"));
  EXPECT_TRUE(obs::json::valid(reg.to_json()));
}

TEST(Manifest, RoundTripsThroughJson) {
  obs::RunManifest m;
  m.name = "fig2_video_steering";
  m.seed = 42;
  m.add_param("scheme", "dchannel \"quoted\"");
  m.add_param("duration_s", "60");
  m.wall_time_ms = 123.5;
  m.trace_events = 100000;
  m.metrics["shim.down.ch0.packets"] = 4200;
  m.metrics["app.video.frame_latency_ms.p95"] = 78.25;

  const std::string text = m.to_json();
  ASSERT_TRUE(obs::json::valid(text));
  const auto back = obs::RunManifest::from_json(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, m.name);
  EXPECT_EQ(back->seed, 42u);
  EXPECT_DOUBLE_EQ(back->wall_time_ms, 123.5);
  EXPECT_EQ(back->trace_events, 100000u);
  EXPECT_EQ(back->metrics, m.metrics);
  ASSERT_EQ(back->params.size(), 2u);
  // Param order may not survive (object keys re-sort); compare as sets.
  std::map<std::string, std::string> in(m.params.begin(), m.params.end());
  std::map<std::string, std::string> out(back->params.begin(),
                                         back->params.end());
  EXPECT_EQ(in, out);
}

TEST(Manifest, FileWriteReadRoundTrip) {
  obs::RunManifest m;
  m.name = "tmp_manifest_test";
  m.seed = 7;
  m.metrics["x"] = 1.5;
  const std::string path = "tmp_manifest_test.manifest.json";
  ASSERT_TRUE(m.write(path));
  const auto back = obs::RunManifest::read(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "tmp_manifest_test");
  EXPECT_EQ(back->seed, 7u);
  EXPECT_DOUBLE_EQ(back->metrics.at("x"), 1.5);
  std::remove(path.c_str());
  EXPECT_FALSE(obs::RunManifest::read(path).has_value());
}

TEST(DelayDecomposition, SplitsQueueingPropagationAndRetxWait) {
  TracerGuard guard(64);
  auto& tr = PacketTracer::instance();
  tr.set_channel_name(0, "eMBB");
  // Packet 1, channel 0 down: 1 ms queueing, 5 ms propagation.
  tr.record(EventKind::kEnqueue, 0, 1, 1, 0, obs::kDirDown, 1500);
  tr.record(EventKind::kDequeue, milliseconds(1), 1, 1, 0, obs::kDirDown,
            1500);
  tr.record(EventKind::kTx, milliseconds(1), 1, 1, 0, obs::kDirDown, 1500);
  tr.record(EventKind::kRx, milliseconds(6), 1, 1, 0, obs::kDirDown, 1500);
  // A retransmission that waited 40 ms.
  tr.record(EventKind::kRetx, milliseconds(50), 2, 1, obs::kNoChannel,
            obs::kNoDirection, 1000, 2, milliseconds(40));
  const auto d = obs::decompose_delays(tr);
  ASSERT_GE(d.channels.size(), 1u);
  EXPECT_EQ(d.channels[0].name, "eMBB");
  EXPECT_EQ(d.channels[0].packets, 1);
  EXPECT_DOUBLE_EQ(d.channels[0].queueing_ms.mean(), 1.0);
  EXPECT_DOUBLE_EQ(d.channels[0].propagation_ms.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.channels[0].total_owd_ms.mean(), 6.0);
  EXPECT_DOUBLE_EQ(d.retx_wait_ms.mean(), 40.0);
}

TEST(Logger, ParseLogLevelAcceptsNamesAndNumbers) {
  using sim::LogLevel;
  EXPECT_EQ(sim::parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(sim::parse_log_level("WARN", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(sim::parse_log_level("3", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(sim::parse_log_level("bogus", LogLevel::kError),
            LogLevel::kError);
  EXPECT_EQ(sim::parse_log_level("", LogLevel::kTrace), LogLevel::kTrace);
}

// ---- End-to-end: instrumentation through a real scenario ----

struct RunResult {
  std::string jsonl;
  std::int64_t shim_down_total = 0;
  std::int64_t registry_down_total = 0;
};

RunResult run_traced_transfer() {
  net::reset_packet_ids_for_test();
  net::reset_flow_ids_for_test();
  obs::MetricsRegistry::global().reset_values();
  PacketTracer::instance().enable(1u << 18);

  sim::Simulator s;
  auto net = std::make_unique<net::TwoHostNetwork>(
      s, std::make_unique<steer::DChannelPolicy>(),
      std::make_unique<steer::DChannelPolicy>());
  net->add_channel(channel::embb_constant_profile());
  net->add_channel(channel::urllc_profile());
  net->enable_resequencing(milliseconds(40));
  net->finalize();

  RunResult r;
  {
    const auto flows = transport::make_flow_pair();
    transport::TcpSender snd(net->server(), flows,
                             transport::make_cca("cubic"));
    transport::TcpReceiver rcv(net->client(), flows);
    snd.write(500'000);
    s.run_until(seconds(10));

    r.jsonl = PacketTracer::instance().to_jsonl();
    const auto& st = net->downlink_shim().stats();
    r.shim_down_total = st.packets_per_channel[0] + st.packets_per_channel[1];
  }
  // Modules fold their stats into the registry when they retire, so the
  // network must be torn down before the counters are read.
  net.reset();
  auto& reg = obs::MetricsRegistry::global();
  r.registry_down_total = reg.counter("shim.down.ch0.packets").value() +
                          reg.counter("shim.down.ch1.packets").value();
  PacketTracer::instance().disable();
  return r;
}

TEST(EndToEnd, RegistryCountersReconcileWithShimStats) {
  const RunResult r = run_traced_transfer();
  EXPECT_GT(r.shim_down_total, 0);
  EXPECT_EQ(r.shim_down_total, r.registry_down_total);
}

TEST(EndToEnd, SameSeedRunsExportByteIdenticalJsonl) {
  const RunResult a = run_traced_transfer();
  const RunResult b = run_traced_transfer();
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);  // byte-identical trace
  EXPECT_EQ(a.shim_down_total, b.shim_down_total);
}

TEST(EndToEnd, TracedTransferProducesLifecycleEventsAndValidChrome) {
  net::reset_packet_ids_for_test();
  net::reset_flow_ids_for_test();
  obs::MetricsRegistry::global().reset_values();
  TracerGuard guard(1u << 18);

  sim::Simulator s;
  auto net = std::make_unique<net::TwoHostNetwork>(
      s, std::make_unique<steer::DChannelPolicy>(),
      std::make_unique<steer::DChannelPolicy>());
  net->add_channel(channel::embb_constant_profile());
  net->add_channel(channel::urllc_profile());
  net->finalize();
  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net->server(), flows,
                           transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net->client(), flows);
  snd.write(200'000);
  s.run_until(seconds(5));

  auto& tr = PacketTracer::instance();
  int steers = 0;
  int enqueues = 0;
  int rxs = 0;
  for (const auto& e : tr.snapshot()) {
    if (e.kind == EventKind::kSteer) ++steers;
    if (e.kind == EventKind::kEnqueue) ++enqueues;
    if (e.kind == EventKind::kRx) ++rxs;
  }
  EXPECT_GT(steers, 0);
  EXPECT_GT(enqueues, 0);
  EXPECT_GT(rxs, 0);
  EXPECT_TRUE(obs::json::valid(tr.to_chrome_trace()));

  const auto d = obs::decompose_delays(tr);
  ASSERT_GE(d.channels.size(), 1u);
  std::int64_t decomposed = 0;
  for (const auto& ch : d.channels) decomposed += ch.packets;
  EXPECT_GT(decomposed, 0);
}

}  // namespace
}  // namespace hvc
