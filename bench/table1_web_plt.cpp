// Table 1: web page-load time (ms) with small background traffic, on
// emulated 5G Lowband (stationary and driving traces) + URLLC, for three
// steering policies: eMBB-only, DChannel, and DChannel with flow
// priorities (background flows barred from URLLC).
//
// Paper reference:            eMBB-only   DChannel        DChannel+prio
//   Lowband stationary        1697.3      1230.5 (27.5%)  1154.9 (32%)
//   Lowband driving           2334.3      1474.6 (36.8%)  1336.8 (42.7%)
//
// This binary is a thin wrapper over the scenario engine: the whole grid
// — traces, policies (DChannel web deployment tuning), corpus and seeds —
// lives in scenarios/table1_web_plt.json, and the engine (src/exp)
// executes it. `hvc_sweep scenarios/table1_web_plt.json` runs the exact
// same experiment; this wrapper adds the paper-style table.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.hpp"
#include "exp/results.hpp"
#include "exp/sweep.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("table1_web_plt");
  obs.set_seed(2023);
  bench::print_header(
      "Table 1: web PLT (ms), 30 pages x 5 loads, 2 background JSON flows");

  const std::string path =
      bench::find_scenario("scenarios/table1_web_plt.json");
  if (path.empty()) {
    std::fprintf(stderr,
                 "table1_web_plt: scenarios/table1_web_plt.json not found "
                 "(run from the repo root or build tree)\n");
    return 1;
  }
  const auto sweep = exp::SweepSpec::from_file(path);
  const auto results = exp::run_sweep(sweep, 1);

  bench::print_row({"trace", "scheme", "mean PLT", "p50", "p95", "vs eMBB"},
                   20);
  std::map<std::string, double> embb_mean;  // per trace
  for (const auto& r : results) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "run %zu failed: %s\n", r.index, r.error.c_str());
      return 1;
    }
    const std::string& profile = r.params.at("channels.0.profile");
    const std::string& scheme = r.params.at("policy");
    const double mean = r.metrics.at("web.plt_ms.mean");
    if (scheme == "embb-only") embb_mean[profile] = mean;
    const double base = embb_mean.count(profile) ? embb_mean[profile] : 0.0;
    const double improvement = base > 0 ? (1.0 - mean / base) * 100.0 : 0.0;
    bench::print_row({profile, scheme, bench::fmt(mean),
                      bench::fmt(r.metrics.at("web.plt_ms.p50")),
                      bench::fmt(r.metrics.at("web.plt_ms.p95")),
                      bench::fmt(improvement) + "%"},
                     20);
  }
  exp::write_file(bench::out_path("table1_web_plt.results.csv"),
                  exp::to_csv(results));
  exp::write_file(bench::out_path("table1_web_plt.results.jsonl"),
                  exp::to_jsonl(results));
  std::printf(
      "\nShape check (paper): DChannel cuts mean PLT on both traces, and\n"
      "flow priorities (keeping background JSON traffic off URLLC) add a\n"
      "further improvement.\n");
  return 0;
}
