file(REMOVE_RECURSE
  "CMakeFiles/hvc_app.dir/video/session.cpp.o"
  "CMakeFiles/hvc_app.dir/video/session.cpp.o.d"
  "CMakeFiles/hvc_app.dir/video/svc.cpp.o"
  "CMakeFiles/hvc_app.dir/video/svc.cpp.o.d"
  "CMakeFiles/hvc_app.dir/web/browser.cpp.o"
  "CMakeFiles/hvc_app.dir/web/browser.cpp.o.d"
  "CMakeFiles/hvc_app.dir/web/page.cpp.o"
  "CMakeFiles/hvc_app.dir/web/page.cpp.o.d"
  "libhvc_app.a"
  "libhvc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
