// The standard hot-path suite: one microbench per instrumented hot path
// plus an end-to-end figure-2 workload. Scales are full-mode work per
// repeat, sized so a repeat takes tens of milliseconds on a desktop core
// (quick mode divides by 8 for CI smoke runs).
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "app/video/session.hpp"
#include "bench/hotpath/harness.hpp"
#include "channel/link.hpp"
#include "core/scenario.hpp"
#include "net/flow_table.hpp"
#include "net/packet.hpp"
#include "sim/slot_map.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "pop/engine.hpp"
#include "sim/simulator.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

namespace hvc::bench::hotpath {

namespace {

/// Self-rescheduling event chain — the pattern every retransmission and
/// pacing timer produces. Exercises EventQueue push/pop symmetrically.
std::uint64_t event_queue_churn(std::uint64_t scale) {
  sim::Simulator s;
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < scale) s.after(sim::microseconds(10), tick);
  };
  s.after(0, tick);
  s.run();
  return fired;
}

/// Far-future scheduling: 256 concurrent event chains whose delays (1 ms
/// to 2 s) land far beyond the calendar ring's horizon, so every push
/// goes through the overflow heap and every pop through migration and
/// retuning — the opposite stress from event_queue_churn's one-slot
/// front-cache chain.
std::uint64_t event_queue_far_future(std::uint64_t scale) {
  sim::Simulator s;
  std::uint64_t fired = 0;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  auto next_delay = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return sim::milliseconds(1) +
           static_cast<sim::Duration>(x % static_cast<std::uint64_t>(
                                              sim::seconds(2)));
  };
  std::function<void()> tick = [&] {
    if (++fired < scale) s.after(next_delay(), tick);
  };
  constexpr int kChains = 256;
  for (int i = 0; i < kChains; ++i) s.after(next_delay(), tick);
  s.run();
  return fired;
}

/// Entity churn through the generational slot map (the city-user /
/// flow-state storage): handle-checked lookups with a retire +
/// generation-bumping reacquire every eighth touch.
std::uint64_t slot_map_churn(std::uint64_t scale) {
  using Map = sim::SlotMap<std::array<std::uint64_t, 6>>;
  Map map;
  constexpr std::uint64_t kEntities = 4096;
  map.reserve(kEntities);
  std::vector<Map::Handle> live;
  live.reserve(kEntities);
  for (std::uint64_t i = 0; i < kEntities; ++i) {
    live.push_back(map.acquire(std::array<std::uint64_t, 6>{i}));
  }
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < scale; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t idx = static_cast<std::size_t>(x % kEntities);
    if ((i & 7) == 0) {
      map.retire(live[idx]);
      live[idx] = map.acquire_reusing(std::array<std::uint64_t, 6>{i});
    } else {
      auto& v = map.get(live[idx]);
      v[0] += i;
      sink += v[0];
    }
  }
  __asm__ __volatile__("" : : "r"(sink) : "memory");
  return scale;
}

/// Per-packet flow-state dispatch through the dense FlowTable (the
/// lookup the steer shim and node demux pay on every packet), over a
/// realistic dense id population.
std::uint64_t flow_table_lookup(std::uint64_t scale) {
  net::FlowTable<std::uint64_t> table;
  constexpr std::uint64_t kFlows = 512;
  for (std::uint64_t f = 1; f <= kFlows; ++f) {
    *table.try_emplace(f).first = f;
  }
  std::uint64_t x = 0x853c49e6748fea9bull;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < scale; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::uint64_t* v = table.find(1 + (x % kFlows));
    *v += i;
    sink += *v;
  }
  __asm__ __volatile__("" : : "r"(sink) : "memory");
  return scale;
}

/// Allocate / clone / ack / free round trips through make_packet, so the
/// tracking allocator sees every shared_ptr control block too.
std::uint64_t packet_lifecycle(std::uint64_t scale) {
  std::uint64_t made = 0;
  for (std::uint64_t i = 0; i < scale; ++i) {
    auto p = net::make_packet();
    p->size_bytes = 1500;
    auto c = net::clone_packet(*p);
    auto a = net::make_ack(c->flow, i, 0);
    made += 3;
    // p, c, a free here — the loop is the whole lifecycle
  }
  return made;
}

/// A saturated constant-rate link draining its queue: every delivery is
/// one Link::on_opportunity() pass (kBytesPerOpportunity service).
std::uint64_t link_serve_saturation(std::uint64_t scale) {
  sim::Simulator s;
  channel::LinkConfig cfg;
  cfg.capacity = trace::CapacityTrace::constant(sim::mbps(100));
  // Queue everything up front; the bench measures service, not droptail.
  cfg.queue_limit_bytes = static_cast<std::int64_t>(scale) * 1500 + 4096;
  channel::Link link(s, cfg);
  std::uint64_t delivered = 0;
  link.set_receiver([&](net::PacketPtr) { ++delivered; });
  for (std::uint64_t i = 0; i < scale; ++i) {
    auto p = net::make_packet();
    p->size_bytes = 1500;
    link.send(std::move(p));
  }
  s.run();
  return delivered;
}

/// Pure policy dispatch: the per-packet steering decision against a
/// two-channel view with varying queue occupancy (the paper's
/// eMBB + URLLC setup).
std::uint64_t steer_dispatch(std::uint64_t scale) {
  steer::DChannelPolicy policy;
  std::array<steer::ChannelView, 2> views{};
  views[0].avg_rate_bps = views[0].recent_rate_bps = 60e6;
  views[0].base_owd = sim::milliseconds(25);
  views[0].queue_limit_bytes = 750 * 1024;
  views[1].index = 1;
  views[1].avg_rate_bps = views[1].recent_rate_bps = 2e6;
  views[1].base_owd = sim::microseconds(2500);
  views[1].queue_limit_bytes = 64 * 1024;
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1500;
  std::int64_t q = 0;
  std::size_t sink = 0;
  for (std::uint64_t i = 0; i < scale; ++i) {
    views[0].queued_bytes = q = (q + 7919) % 500000;
    sink += policy.steer(pkt, views, 0).channel;
  }
  // Keep `sink` observable so the decision loop cannot fold away.
  __asm__ __volatile__("" : : "r"(sink) : "memory");
  return scale;
}

/// One sampling tick across a realistic probe population (16 series).
std::uint64_t telemetry_sampling(std::uint64_t scale) {
  constexpr std::uint64_t kProbes = 16;
  obs::TelemetrySampler sampler;
  obs::TelemetryConfig cfg;
  cfg.max_samples_per_series = 1u << 10;
  sampler.enable(cfg);
  double x = 0.0;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    sampler.add_probe("link", "probe" + std::to_string(i),
                      [&x] { return x += 1.0; });
  }
  const std::uint64_t ticks = scale / kProbes;
  for (std::uint64_t t = 0; t < ticks; ++t) {
    sampler.sample(static_cast<sim::Time>(t));
  }
  sampler.disable();
  return ticks * kProbes;
}

/// End-to-end figure-2 workload: SVC video over a trace-driven 5G eMBB +
/// URLLC pair under dchannel steering. `scale` is simulated milliseconds;
/// items are executed simulator events (the kEventPop hook), so the stat
/// is the headline events/sec of a real workload, not a microloop.
std::uint64_t fig2_video_e2e(std::uint64_t scale) {
  const sim::Duration duration =
      sim::milliseconds(static_cast<std::int64_t>(scale));
  const auto cfg = core::ScenarioConfig::traced(
      trace::FiveGProfile::kLowbandDriving, "dchannel", duration, 2023);
  (void)core::run_video(cfg, app::video::SvcConfig{},
                        app::video::VideoReceiverConfig{}, duration);
  return obs::prof::stats(obs::prof::Hook::kEventPop).calls;
}

/// End-to-end city-cell population run: 10k archetype-mixed users with
/// churn on one shared cell (src/pop flow-level engine). `scale` is
/// simulated milliseconds; items are executed simulator events, so the
/// stat is the population engine's headline events/sec.
std::uint64_t city_cell_10k(std::uint64_t scale) {
  pop::CityConfig cfg;
  cfg.population.users = 10'000;
  cfg.population.churn.arrival_rate_per_s = 2;
  cfg.population.churn.mean_session_s = 120;
  cfg.cell.embb_rate_bps = 1e9;
  cfg.cell.urllc_rate_bps = 20e6;
  cfg.duration = sim::milliseconds(static_cast<std::int64_t>(scale));
  const pop::CityResult r = pop::run_city(cfg);
  return r.events;
}

/// Span layer cost per offered unit: build a two-stage tree in the
/// bounded flight recorder and run it through the tail/reservoir
/// retention rule (histogram feed + quantile threshold + counter-hash
/// reservoir). This is the whole per-page overhead the city engine pays
/// when a scenario enables "spans".
std::uint64_t spans_overhead(std::uint64_t scale) {
  obs::SpanRecorder rec;
  rec.enable({});
  obs::SpanUnitBuilder b;
  for (std::uint64_t i = 0; i < scale; ++i) {
    const auto t0 = static_cast<sim::Time>(i) * 1000;
    b.begin("web", "plt_ms", static_cast<std::uint32_t>(i & 1023), t0);
    b.begin_stage(t0, 50'000, "embb");
    b.leg_open(0, t0 + 50'000, 20'000, "embb", "city:embb-only", 160'000);
    b.leg_close(0, t0 + 400'000);
    b.end_stage(t0 + 400'000);
    b.begin_stage(t0 + 400'000, 50'000, "embb");
    b.leg_open(0, t0 + 450'000, 2'000, "urllc", "city:urllc-admitted",
               16'000);
    b.leg_close(0, t0 + 500'000);
    b.end_stage(t0 + 500'000);
    rec.offer(b.finish(t0 + 500'000, 500'000,
                       static_cast<double>((i * 7919) % 997)));
  }
  return scale;
}

}  // namespace

void register_default_suite() {
  if (!registry().empty()) return;
  register_bench({"event_queue_churn", "events", 400'000, event_queue_churn});
  register_bench(
      {"event_queue_far_future", "events", 200'000, event_queue_far_future});
  register_bench({"slot_map_churn", "ops", 400'000, slot_map_churn});
  register_bench({"flow_table_lookup", "lookups", 400'000, flow_table_lookup});
  register_bench({"packet_lifecycle", "packets", 150'000, packet_lifecycle});
  register_bench(
      {"link_serve_saturation", "packets", 40'000, link_serve_saturation});
  register_bench({"steer_dispatch", "decisions", 400'000, steer_dispatch});
  register_bench(
      {"telemetry_sampling", "samples", 400'000, telemetry_sampling});
  register_bench({"fig2_video_e2e", "events", 2'000, fig2_video_e2e});
  register_bench({"city_cell_10k", "events", 30'000, city_cell_10k});
  register_bench({"spans_overhead", "units", 200'000, spans_overhead});
}

}  // namespace hvc::bench::hotpath
