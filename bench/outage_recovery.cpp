// Fault-injection headline: bulk CUBIC over eMBB+URLLC with a 3 s full
// outage of the eMBB channel at t=24 s (scenarios/outage_recovery.json).
// Reports goodput, time-to-recover after the outage clears, bytes the
// sender committed into the blacked-out links ("wasted"), and RTO count —
// the graceful-degradation story of §fault (DESIGN.md §5.8).
//
// For contrast, the same outage is rerun on a single-channel (eMBB-only)
// topology: with no surviving channel to fail over to, the transport
// sits in bounded RTO backoff for the whole blackout and recovery waits
// for the next backoff probe.
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"

namespace {

void print_result(const char* label, const hvc::exp::RunResult& r) {
  using namespace hvc;
  bench::print_row(
      {label, bench::fmt(r.metrics.at("bulk.goodput_mbps"), 2),
       bench::fmt(r.metrics.at("fault.outage0.time_to_recover_ms"), 1),
       bench::fmt(r.metrics.at("fault.blackout_committed_bytes") / 1000.0, 1),
       bench::fmt(r.metrics.at("bulk.rto_count"), 0),
       bench::fmt(r.metrics.at("bulk.retransmissions"), 0)},
      14);
}

}  // namespace

int main() {
  using namespace hvc;
  bench::ObsSession obs("outage_recovery");
  obs.set_seed(42);
  obs.param("scenario", "scenarios/outage_recovery.json");
  bench::print_header(
      "Outage recovery: 3 s eMBB blackout at t=24 s, bulk CUBIC, 30 s");

  const std::string path =
      bench::find_scenario("scenarios/outage_recovery.json");
  if (path.empty()) {
    std::fprintf(stderr,
                 "outage_recovery: scenarios/outage_recovery.json not found "
                 "(run from the repo root or build tree)\n");
    return 1;
  }
  auto spec = exp::ScenarioSpec::from_file(path);
  // Keep the bench self-contained: artifacts from the JSON's telemetry
  // block land under the session's output directory.
  exp::RunOptions opts;
  opts.out_prefix = bench::out_path("outage_recovery");

  bench::print_row({"steering", "goodput Mbps", "recover ms", "wasted kB",
                    "RTOs", "rexmits"},
                   14);
  const auto steered = exp::run_scenario(spec, opts);
  if (!steered.error.empty()) {
    std::fprintf(stderr, "run failed: %s\n", steered.error.c_str());
    return 1;
  }
  print_result("dchannel", steered);

  // Baseline: same outage, but the eMBB channel is all there is.
  auto solo = spec;
  solo.name += "_single_channel";
  solo.channels.resize(1);
  solo.up_policy.name = "embb-only";
  solo.down_policy.name = "embb-only";
  solo.telemetry.enabled = false;  // one artifact set per bench run
  const auto stuck = exp::run_scenario(solo);
  if (!stuck.error.empty()) {
    std::fprintf(stderr, "baseline failed: %s\n", stuck.error.c_str());
    return 1;
  }
  print_result("embb solo", stuck);

  std::printf(
      "\nExpected shape: with a surviving channel, DChannel re-steers onto\n"
      "URLLC within one RTT of the blackout (recover ms ~ RTT, goodput\n"
      "dips but survives); the single-channel baseline stalls in bounded\n"
      "RTO backoff, wastes its probes into the dark link, and only\n"
      "recovers at the next backoff expiry after the link returns.\n");
  return 0;
}
