// Tests for the network layer: shim steering + layering enforcement,
// node demux/dedup, topology wiring, and the resequencing buffer.
#include <gtest/gtest.h>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/reorder.hpp"
#include "net/shim.hpp"
#include "steer/basic_policies.hpp"
#include "steer/dchannel.hpp"
#include "steer/priority.hpp"
#include "steer/redundant.hpp"

namespace hvc::net {
namespace {

using sim::milliseconds;

PacketPtr seq_packet(FlowId flow, std::uint64_t seq, std::uint32_t len) {
  auto p = make_packet();
  p->flow = flow;
  p->type = PacketType::kData;
  p->size_bytes = len + kHeaderBytes;
  p->tp.seq = seq;
  p->tp.len = len;
  return p;
}

std::unique_ptr<TwoHostNetwork> fig1_network(
    std::unique_ptr<steer::SteeringPolicy> up,
    std::unique_ptr<steer::SteeringPolicy> down, sim::Simulator& s) {
  auto net = std::make_unique<TwoHostNetwork>(s, std::move(up),
                                              std::move(down));
  net->add_channel(channel::embb_constant_profile());
  net->add_channel(channel::urllc_profile());
  net->finalize();
  return net;
}

TEST(Packet, IdsAreUnique) {
  auto a = make_packet();
  auto b = make_packet();
  EXPECT_NE(a->id, b->id);
}

TEST(Packet, CloneGetsFreshIdButSameContent) {
  auto a = make_packet();
  a->flow = 9;
  a->size_bytes = 777;
  a->tp.seq = 42;
  auto b = clone_packet(*a);
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(b->flow, 9u);
  EXPECT_EQ(b->size_bytes, 777);
  EXPECT_EQ(b->tp.seq, 42u);
}

TEST(Packet, MakeAckShape) {
  auto a = make_ack(5, 1000, milliseconds(3));
  EXPECT_EQ(a->type, PacketType::kAck);
  EXPECT_EQ(a->size_bytes, kHeaderBytes);
  EXPECT_TRUE(a->tp.has_ack);
  EXPECT_EQ(a->tp.ack, 1000u);
  EXPECT_EQ(a->tp.ts_echo, milliseconds(3));
}

TEST(Node, RoutesToRegisteredFlow) {
  sim::Simulator s;
  Node n(s, "n");
  int got = 0;
  n.register_flow(1, [&](PacketPtr) { ++got; });
  auto p = make_packet();
  p->flow = 1;
  n.deliver(std::move(p));
  EXPECT_EQ(got, 1);
}

TEST(Node, UnknownFlowCounted) {
  sim::Simulator s;
  Node n(s, "n");
  auto p = make_packet();
  p->flow = 99;
  n.deliver(std::move(p));
  EXPECT_EQ(n.unroutable_packets(), 1);
}

TEST(Node, DeduplicatesCopies) {
  sim::Simulator s;
  Node n(s, "n");
  int got = 0;
  n.register_flow(1, [&](PacketPtr) { ++got; });
  auto p = make_packet();
  p->flow = 1;
  p->dup_group = 12345;
  auto copy = clone_packet(*p);
  n.deliver(std::move(p));
  n.deliver(std::move(copy));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(n.duplicates_suppressed(), 1);
}

TEST(Shim, CountsPerChannel) {
  sim::Simulator s;
  auto net = fig1_network(std::make_unique<steer::SingleChannelPolicy>(0),
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          s);
  for (int i = 0; i < 5; ++i) {
    auto p = make_packet();
    p->flow = 1;
    p->size_bytes = 1500;
    net->client().send(std::move(p));
  }
  EXPECT_EQ(net->uplink_shim().stats().packets_per_channel[0], 5);
  EXPECT_EQ(net->uplink_shim().stats().packets_per_channel[1], 0);
}

TEST(Shim, StampsChosenChannelOnPacket) {
  sim::Simulator s;
  auto net = fig1_network(std::make_unique<steer::SingleChannelPolicy>(1),
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          s);
  std::uint8_t seen = 255;
  net->server().register_flow(1, [&](PacketPtr p) { seen = p->channel; });
  auto p = make_packet();
  p->flow = 1;
  p->size_bytes = 200;
  net->client().send(std::move(p));
  s.run();
  EXPECT_EQ(seen, 1);
}

TEST(Shim, EnforcesLayeringAgainstNetworkLayerPolicies) {
  // A DChannel policy must see blanked app info even if the packet
  // carries it. We verify indirectly: a priority-0 packet gets the same
  // treatment as an unannotated one under URLLC backlog that makes the
  // heuristic decline (the cross-layer policy would pin it to URLLC).
  sim::Simulator s;
  auto net = fig1_network(std::make_unique<steer::DChannelPolicy>(),
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          s);
  // Build URLLC backlog so dchannel_choose declines data packets.
  for (int i = 0; i < 12; ++i) {
    auto filler = make_packet();
    filler->flow = 2;
    filler->size_bytes = 1500;
    filler->type = PacketType::kData;
    net->channels().at(1).uplink().send(std::move(filler));
  }
  auto p = make_packet();
  p->flow = 1;
  p->size_bytes = 1500;
  p->type = PacketType::kData;
  p->app.present = true;
  p->app.priority = 0;  // would pin to URLLC under MessagePriorityPolicy
  net->client().send(std::move(p));
  EXPECT_EQ(net->uplink_shim().stats().packets_per_channel[0], 1);
}

TEST(Shim, CrossLayerPolicySeesAppInfo) {
  sim::Simulator s;
  auto net = fig1_network(std::make_unique<steer::MessagePriorityPolicy>(),
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          s);
  for (int i = 0; i < 12; ++i) {
    auto filler = make_packet();
    filler->flow = 2;
    filler->size_bytes = 1500;
    filler->type = PacketType::kData;
    net->channels().at(1).uplink().send(std::move(filler));
  }
  auto p = make_packet();
  p->flow = 1;
  p->size_bytes = 1500;
  p->type = PacketType::kData;
  p->app.present = true;
  p->app.priority = 0;
  net->client().send(std::move(p));
  EXPECT_EQ(net->uplink_shim().stats().packets_per_channel[1], 1);
}

TEST(Shim, DuplicatesDeliveredOnceEndToEnd) {
  sim::Simulator s;
  auto net = fig1_network(
      std::make_unique<steer::RedundantPolicy>(
          std::make_unique<steer::SingleChannelPolicy>(0),
          steer::RedundantConfig{.mirror_all = true}),
      std::make_unique<steer::SingleChannelPolicy>(0), s);
  int got = 0;
  net->server().register_flow(1, [&](PacketPtr) { ++got; });
  auto p = make_packet();
  p->flow = 1;
  p->size_bytes = 500;
  p->type = PacketType::kData;
  net->client().send(std::move(p));
  s.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net->uplink_shim().stats().duplicates_sent, 1);
  EXPECT_EQ(net->server().duplicates_suppressed(), 1);
}

TEST(Network, BidirectionalDelivery) {
  sim::Simulator s;
  auto net = fig1_network(std::make_unique<steer::SingleChannelPolicy>(0),
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          s);
  bool up = false;
  bool down = false;
  net->server().register_flow(1, [&](PacketPtr) { up = true; });
  net->client().register_flow(2, [&](PacketPtr) { down = true; });
  auto pu = make_packet();
  pu->flow = 1;
  pu->size_bytes = 100;
  net->client().send(std::move(pu));
  auto pd = make_packet();
  pd->flow = 2;
  pd->size_bytes = 100;
  net->server().send(std::move(pd));
  s.run();
  EXPECT_TRUE(up);
  EXPECT_TRUE(down);
}

TEST(Network, UrllcIsFasterForSmallPackets) {
  sim::Simulator s;
  auto net = fig1_network(std::make_unique<steer::SingleChannelPolicy>(1),
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          s);
  sim::Time arrival = -1;
  net->server().register_flow(1, [&](PacketPtr) { arrival = s.now(); });
  auto p = make_packet();
  p->flow = 1;
  p->size_bytes = 100;
  net->client().send(std::move(p));
  s.run();
  // URLLC: <1 ms serialization + 2.5 ms OWD.
  EXPECT_LT(arrival, milliseconds(5));
}

// ---- Resequencing buffer ----

TEST(Reorder, PassesInOrderTrafficThrough) {
  sim::Simulator s;
  std::vector<std::uint64_t> seqs;
  ReorderBuffer rb(s, milliseconds(40),
                   [&](PacketPtr p) { seqs.push_back(p->tp.seq); });
  rb.accept(seq_packet(1, 0, 100));
  rb.accept(seq_packet(1, 100, 100));
  rb.accept(seq_packet(1, 200, 100));
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 100, 200}));
  EXPECT_EQ(rb.stats().held, 0);
}

TEST(Reorder, HoldsAheadPacketUntilGapFills) {
  sim::Simulator s;
  std::vector<std::uint64_t> seqs;
  ReorderBuffer rb(s, milliseconds(40),
                   [&](PacketPtr p) { seqs.push_back(p->tp.seq); });
  rb.accept(seq_packet(1, 0, 100));
  rb.accept(seq_packet(1, 200, 100));  // gap at [100, 200)
  EXPECT_EQ(seqs.size(), 1u);
  rb.accept(seq_packet(1, 100, 100));  // fills the gap
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 100, 200}));
  EXPECT_EQ(rb.stats().released_by_gap_fill, 1);
}

TEST(Reorder, ReleasesOnTimeout) {
  sim::Simulator s;
  std::vector<std::uint64_t> seqs;
  ReorderBuffer rb(s, milliseconds(40),
                   [&](PacketPtr p) { seqs.push_back(p->tp.seq); });
  rb.accept(seq_packet(1, 0, 100));
  rb.accept(seq_packet(1, 200, 100));
  s.run();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 200}));
  EXPECT_EQ(rb.stats().released_by_timeout, 1);
}

TEST(Reorder, AcksBypassBuffer) {
  sim::Simulator s;
  int delivered = 0;
  ReorderBuffer rb(s, milliseconds(40), [&](PacketPtr) { ++delivered; });
  auto ack = make_ack(1, 500, 0);
  rb.accept(std::move(ack));
  EXPECT_EQ(delivered, 1);
}

TEST(Reorder, IndependentPerFlow) {
  sim::Simulator s;
  std::vector<std::pair<FlowId, std::uint64_t>> out;
  ReorderBuffer rb(s, milliseconds(40), [&](PacketPtr p) {
    out.emplace_back(p->flow, p->tp.seq);
  });
  rb.accept(seq_packet(1, 0, 100));
  rb.accept(seq_packet(2, 500, 100));  // flow 2 starts at 500: in order
  EXPECT_EQ(out.size(), 2u);
}

TEST(Reorder, RetransmissionDeliversImmediately) {
  sim::Simulator s;
  std::vector<std::uint64_t> seqs;
  ReorderBuffer rb(s, milliseconds(40),
                   [&](PacketPtr p) { seqs.push_back(p->tp.seq); });
  rb.accept(seq_packet(1, 0, 100));
  rb.accept(seq_packet(1, 100, 100));
  rb.accept(seq_packet(1, 0, 100));  // dup/retx below expected
  EXPECT_EQ(seqs.size(), 3u);
}

}  // namespace
}  // namespace hvc::net
