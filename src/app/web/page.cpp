#include "app/web/page.hpp"

#include <algorithm>

namespace hvc::app::web {

std::int64_t WebPage::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& o : objects) sum += o.bytes;
  return sum;
}

int WebPage::origins() const {
  int max_origin = 0;
  for (const auto& o : objects) max_origin = std::max(max_origin, o.origin);
  return max_origin + 1;
}

int WebPage::depth() const {
  std::vector<int> d(objects.size(), 1);
  int best = 0;
  for (const auto& o : objects) {  // ids are topologically ordered
    for (const int dep : o.deps) {
      d[o.id] = std::max(d[o.id], d[dep] + 1);
    }
    best = std::max(best, d[o.id]);
  }
  return best;
}

WebPage generate_page(PageKind kind, int index, sim::Rng& rng) {
  WebPage page;
  page.name = (kind == PageKind::kLanding ? "landing-" : "internal-") +
              std::to_string(index);

  // Hispar [9]: landing pages carry roughly 2x the objects/bytes of
  // internal pages. Counts lognormal; sizes heavy-tailed (Pareto body with
  // a cap so one object can't dominate a run).
  const double count_mu = kind == PageKind::kLanding ? 4.1 : 3.4;
  const int object_count = static_cast<int>(
      std::clamp(rng.lognormal(count_mu, 0.45), 12.0, 220.0));
  const int origin_count = static_cast<int>(
      std::clamp(rng.lognormal(1.9, 0.4), 3.0, 18.0));

  // Root HTML document.
  WebObject html;
  html.id = 0;
  html.bytes = static_cast<std::int64_t>(
      std::clamp(rng.lognormal(10.6, 0.6), 8e3, 400e3));  // ~40 kB median
  html.origin = 0;
  html.render_blocking = true;
  page.objects.push_back(html);

  // First wave: render-blocking CSS/JS discovered from the HTML.
  const int blocking = std::clamp(object_count / 8, 2, 14);
  for (int i = 0; i < blocking; ++i) {
    WebObject o;
    o.id = static_cast<int>(page.objects.size());
    o.bytes = static_cast<std::int64_t>(
        std::clamp(rng.pareto(6e3, 1.3), 2e3, 600e3));
    o.origin = static_cast<int>(rng.uniform_int(0, origin_count - 1));
    o.deps = {0};
    o.render_blocking = true;
    page.objects.push_back(o);
  }

  // Remaining objects: images/fonts/async scripts. Some depend on the
  // HTML only; some on a blocking script (discovered late); a few form
  // deeper chains (script -> JSON -> image).
  while (static_cast<int>(page.objects.size()) < object_count) {
    WebObject o;
    o.id = static_cast<int>(page.objects.size());
    o.bytes = static_cast<std::int64_t>(
        std::clamp(rng.pareto(4e3, 1.2), 1e3, 1.5e6));
    o.origin = static_cast<int>(rng.uniform_int(0, origin_count - 1));
    const double u = rng.uniform();
    if (u < 0.55) {
      o.deps = {0};
    } else if (u < 0.85) {
      o.deps = {static_cast<int>(rng.uniform_int(1, blocking))};
    } else {
      // Chain off any earlier non-root object.
      o.deps = {static_cast<int>(
          rng.uniform_int(1, static_cast<int>(page.objects.size()) - 1))};
    }
    page.objects.push_back(o);
  }
  return page;
}

std::vector<WebPage> generate_corpus(const CorpusConfig& cfg) {
  sim::Rng rng(cfg.seed);
  std::vector<WebPage> corpus;
  corpus.reserve(cfg.pages);
  for (int i = 0; i < cfg.pages; ++i) {
    const PageKind kind =
        (static_cast<double>(i) + 0.5) / cfg.pages < cfg.landing_fraction
            ? PageKind::kLanding
            : PageKind::kInternal;
    corpus.push_back(generate_page(kind, i, rng));
  }
  return corpus;
}

}  // namespace hvc::app::web
