file(REMOVE_RECURSE
  "CMakeFiles/steer_test.dir/steer_test.cpp.o"
  "CMakeFiles/steer_test.dir/steer_test.cpp.o.d"
  "steer_test"
  "steer_test.pdb"
  "steer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
