file(REMOVE_RECURSE
  "CMakeFiles/hvc_net.dir/node.cpp.o"
  "CMakeFiles/hvc_net.dir/node.cpp.o.d"
  "CMakeFiles/hvc_net.dir/packet.cpp.o"
  "CMakeFiles/hvc_net.dir/packet.cpp.o.d"
  "CMakeFiles/hvc_net.dir/reorder.cpp.o"
  "CMakeFiles/hvc_net.dir/reorder.cpp.o.d"
  "CMakeFiles/hvc_net.dir/shim.cpp.o"
  "CMakeFiles/hvc_net.dir/shim.cpp.o.d"
  "libhvc_net.a"
  "libhvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
