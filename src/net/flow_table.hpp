// Dense flow-keyed state table.
//
// Flow ids are allocated densely from 1 (net::next_flow_id, reset per
// isolated run by net::IdScope), so per-flow state keyed by FlowId is a
// vector index in every realistic run — the unordered_map the steer and
// demux hot paths used to pay a hash + probe per packet for was mapping
// small dense integers. FlowTable stores the first kDenseLimit ids in a
// flat vector (presence bit per entry) and spills anything above the
// limit — synthetic or adversarial ids — into an ordered map, so lookup
// is an index in the common case and stays correct in every case.
//
// Not iterable on purpose: the lint unordered-container rule exists
// because iteration order once leaked into exports. The only whole-table
// operation is clear().
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace hvc::net {

template <class V>
class FlowTable {
 public:
  /// Ids below this live in the dense vector (512 KiB of handlers at
  /// the limit); the tail map handles the rest.
  static constexpr std::uint64_t kDenseLimit = 1u << 16;

  /// The value for `key`, or nullptr when absent.
  [[nodiscard]] V* find(std::uint64_t key) {
    if (key < kDenseLimit) {
      if (key >= dense_.size() || !dense_[key].present) return nullptr;
      return &dense_[key].value;
    }
    const auto it = spill_.find(key);
    return it == spill_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const V* find(std::uint64_t key) const {
    return const_cast<FlowTable*>(this)->find(key);
  }

  /// The value for `key`, default-constructing it when absent. Second
  /// element reports whether the entry was created.
  std::pair<V*, bool> try_emplace(std::uint64_t key) {
    if (key < kDenseLimit) {
      if (key >= dense_.size()) {
        // hvc-lint: allow(hotpath-alloc): grows to the highest flow id
        // seen, once — ids are dense, so this amortizes to one growth
        // per run and is bounded by kDenseLimit
        dense_.resize(static_cast<std::size_t>(key) + 1);
      }
      Entry& e = dense_[key];
      const bool created = !e.present;
      if (created) {
        e.present = true;
        ++size_;
      }
      return {&e.value, created};
    }
    // hvc-lint: allow(hotpath-alloc): spill map only holds ids past the
    // dense limit, which dense per-run id allocation never produces
    const auto [it, created] = spill_.try_emplace(key);
    if (created) ++size_;
    return {&it->second, created};
  }

  bool erase(std::uint64_t key) {
    if (key < kDenseLimit) {
      if (key >= dense_.size() || !dense_[key].present) return false;
      dense_[key] = Entry{};
      --size_;
      return true;
    }
    if (spill_.erase(key) == 0) return false;
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return find(key) != nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  void clear() {
    dense_.clear();
    spill_.clear();
    size_ = 0;
  }

 private:
  struct Entry {
    V value{};
    bool present = false;
  };
  std::vector<Entry> dense_;
  std::map<std::uint64_t, V> spill_;
  std::size_t size_ = 0;
};

}  // namespace hvc::net
