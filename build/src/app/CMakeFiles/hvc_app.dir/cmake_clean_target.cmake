file(REMOVE_RECURSE
  "libhvc_app.a"
)
