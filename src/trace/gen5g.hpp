// Synthetic 5G eMBB capacity traces.
//
// Substitution (DESIGN.md §2): the paper replays commercial 5G traces
// collected by DChannel [42]; those traces are not redistributable, so we
// generate Markov-modulated capacity processes calibrated to the published
// statistics — Lowband ~50 Mbps with mobility-induced degradation driving
// p98 RTT toward ~236 ms under load, and mmWave with very high peak rate
// but multi-second blockage outages that produce the paper's 6.4 s
// eMBB-only latency tail (Fig. 2, footnote 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "trace/trace.hpp"

namespace hvc::trace {

/// A state of the Markov-modulated rate process.
struct RateState {
  std::string name;
  sim::RateBps mean_rate = 0;
  double rate_jitter_frac = 0.0;   ///< per-step multiplicative jitter (sigma)
  sim::Duration mean_dwell = 0;    ///< exponential dwell mean
  sim::Duration max_dwell = 0;     ///< cap (0 = uncapped)
  std::vector<double> next_probs;  ///< transition distribution over states
};

struct MarkovRateModel {
  std::vector<RateState> states;
  std::size_t initial_state = 0;
  /// Rate resampling step within a state (jitter granularity).
  sim::Duration step = sim::milliseconds(10);
};

/// Generate a capacity trace of the given duration from the model.
/// Deterministic in `seed`.
CapacityTrace generate_markov_trace(const MarkovRateModel& model,
                                    sim::Duration duration, std::uint64_t seed,
                                    std::int64_t mtu = 1500);

/// Named profiles matching the paper's experimental conditions.
enum class FiveGProfile {
  kLowbandStationary,  ///< Table 1 "Stat." row
  kLowbandDriving,     ///< Table 1 "Drv." row, Fig. 2 left column
  kMmWaveDriving,      ///< Fig. 2 right column
};

[[nodiscard]] const char* to_string(FiveGProfile p);

/// The Markov model behind each profile (exposed for tests/ablations).
[[nodiscard]] MarkovRateModel five_g_model(FiveGProfile profile);

/// Generate a trace for a named profile.
CapacityTrace make_5g_trace(FiveGProfile profile, sim::Duration duration,
                            std::uint64_t seed, std::int64_t mtu = 1500);

/// Base one-way propagation delay of the eMBB bearer for a profile
/// (queueing from the capacity trace adds on top of this).
[[nodiscard]] sim::Duration embb_base_owd(FiveGProfile profile);

}  // namespace hvc::trace
