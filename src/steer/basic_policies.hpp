// Baseline steering policies: single-channel, round-robin, weighted
// spray, and greedy minimum-delay. These are the strawmen the paper's §3.1
// compares against — they either ignore heterogeneity entirely
// (round-robin/weighted, the "MPTCP view" of multiple paths) or chase
// latency with no notion of cost (min-delay).
#pragma once

#include <cstdint>
#include <memory>

#include "steer/steering_policy.hpp"

namespace hvc::steer {

/// Everything on one fixed channel (index 0 == the paper's "eMBB-only").
class SingleChannelPolicy final : public SteeringPolicy {
 public:
  explicit SingleChannelPolicy(std::size_t channel = 0) : channel_(channel) {}

  [[nodiscard]] std::string name() const override {
    return "single[" + std::to_string(channel_) + "]";
  }

  Decision steer(const net::Packet&, std::span<const ChannelView> channels,
                 sim::Time) override {
    if (channel_ < channels.size()) return {channel_, {}, "single:fixed"};
    return {0, {}, "single:out-of-range"};
  }

 private:
  std::size_t channel_;
};

/// Packets alternate across all channels, blind to their properties.
class RoundRobinPolicy final : public SteeringPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }

  Decision steer(const net::Packet&, std::span<const ChannelView> channels,
                 sim::Time) override {
    return {next_++ % channels.size(), {}, "round-robin:next"};
  }

 private:
  std::size_t next_ = 0;
};

/// Spray proportionally to average channel bandwidth (deficit counter).
/// Approximates what a bandwidth-aggregating multipath scheduler does.
class WeightedPolicy final : public SteeringPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "weighted"; }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels, sim::Time) override {
    if (deficit_.size() != channels.size()) {
      deficit_.assign(channels.size(), 0.0);
    }
    double total = 0.0;
    for (const auto& c : channels) total += c.avg_rate_bps;
    if (total <= 0.0) return {0, {}, "weighted:no-rate"};
    // Credit each channel its bandwidth share; send on the most creditworthy.
    std::size_t best = 0;
    for (std::size_t i = 0; i < channels.size(); ++i) {
      deficit_[i] += channels[i].avg_rate_bps / total *
                     static_cast<double>(pkt.size_bytes);
      if (deficit_[i] > deficit_[best]) best = i;
    }
    deficit_[best] -= static_cast<double>(pkt.size_bytes);
    return {best, {}, "weighted:deficit"};
  }

 private:
  std::vector<double> deficit_;
};

/// Greedy: pick the channel with the smallest estimated delivery delay for
/// this packet. No hysteresis, no notion of channel scarcity — tends to
/// fill the low-latency channel until its queue estimate exceeds eMBB's.
class MinDelayPolicy final : public SteeringPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "min-delay"; }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels, sim::Time) override {
    std::size_t best = 0;
    sim::Duration best_d = channels[0].est_delivery_delay(pkt.size_bytes);
    bool tied = false;
    for (std::size_t i = 1; i < channels.size(); ++i) {
      const auto d = channels[i].est_delivery_delay(pkt.size_bytes);
      if (d < best_d) {
        best = i;
        best_d = d;
        tied = false;
      } else if (d == best_d) {
        tied = true;  // the earlier-indexed channel keeps the packet
      }
    }
    return {best, {}, tied ? "min-delay:tie-break" : "min-delay:fastest"};
  }
};

/// Honors the sender's explicit path choice (Packet::requested_channel),
/// falling back to a delegate for unpinned packets. This is the network
/// face of a *transport-layer* solution (§3.2): the shim becomes a dumb
/// demux and all intelligence lives at the endpoint.
class PinnedChannelPolicy final : public SteeringPolicy {
 public:
  explicit PinnedChannelPolicy(std::unique_ptr<SteeringPolicy> fallback =
                                   nullptr)
      : fallback_(std::move(fallback)) {}

  [[nodiscard]] std::string name() const override { return "pinned"; }
  [[nodiscard]] bool uses_app_info() const override {
    return fallback_ && fallback_->uses_app_info();
  }
  [[nodiscard]] bool uses_flow_priority() const override {
    return fallback_ && fallback_->uses_flow_priority();
  }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override {
    if (pkt.requested_channel >= 0 &&
        static_cast<std::size_t>(pkt.requested_channel) < channels.size()) {
      return {static_cast<std::size_t>(pkt.requested_channel), {},
              "pinned:requested"};
    }
    if (fallback_) return fallback_->steer(pkt, channels, now);
    return {0, {}, "pinned:default"};
  }

 private:
  std::unique_ptr<SteeringPolicy> fallback_;
};

}  // namespace hvc::steer
