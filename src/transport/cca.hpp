// Congestion-control algorithm interface.
//
// The TCP-like sender drives a CcAlgorithm through a narrow hook API; the
// CCA answers with a congestion window and (optionally) a pacing rate.
// Keeping the interface narrow is what lets Figure 1's pathology emerge
// from the genuine algorithms rather than from special-casing: BBR, Vegas
// and Vivace only ever see (rtt, delivery-rate, loss) signals, exactly the
// signals that packet steering distorts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/units.hpp"

namespace hvc::transport {

inline constexpr std::int64_t kMss = 1460;

struct AckEvent {
  sim::Time now = 0;
  sim::Duration rtt = 0;             ///< sample for the newly acked packet
  std::int64_t acked_bytes = 0;      ///< newly cum-acked + newly sacked
  std::int64_t bytes_in_flight = 0;  ///< after processing this ack
  double delivery_rate_bps = 0.0;    ///< BBR-style rate sample (0 = none)
  bool app_limited = false;          ///< sender had nothing to send
  std::uint8_t channel = 255;        ///< channel echo (255 = unknown)
  std::int64_t round_trips = 0;      ///< sender's round counter
};

struct LossEvent {
  sim::Time now = 0;
  std::int64_t lost_bytes = 0;
  std::int64_t bytes_in_flight = 0;
  bool is_rto = false;
};

class CcAlgorithm {
 public:
  virtual ~CcAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  virtual void on_packet_sent(sim::Time now, std::int64_t bytes,
                              std::int64_t bytes_in_flight) {
    (void)now;
    (void)bytes;
    (void)bytes_in_flight;
  }
  virtual void on_ack(const AckEvent& ev) = 0;
  virtual void on_loss(const LossEvent& ev) = 0;

  /// A previously reported loss proved spurious (the original arrived,
  /// never retransmitted): the CCA may undo its reduction, as Linux does
  /// on DSACK/F-RTO evidence. Default: ignore.
  virtual void on_spurious_loss(sim::Time now) { (void)now; }

  /// Congestion window in bytes (the sender's in-flight cap).
  [[nodiscard]] virtual std::int64_t cwnd_bytes() const = 0;

  /// Pacing rate in bits/s; <= 0 means "unpaced" (cwnd-clocked only).
  [[nodiscard]] virtual double pacing_rate_bps() const { return 0.0; }
};

using CcaPtr = std::unique_ptr<CcAlgorithm>;

/// Factory: "cubic", "bbr", "vegas", "vivace", "hvc" (§3.2 channel-aware).
CcaPtr make_cca(const std::string& name);

}  // namespace hvc::transport
