#include "exp/spec.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

namespace hvc::exp {

namespace {

using obs::json::Value;

[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  throw SpecError(path + ": " + msg);
}

const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

/// Strict-mode guard: every key in `obj` must be in `allowed`.
void check_keys(const Value& obj, const std::string& path,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, unused] : obj.object) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) fail(path.empty() ? key : path + "." + key, "unknown key");
  }
}

const Value& require_object(const Value& v, const std::string& path) {
  if (!v.is_object()) {
    fail(path, std::string("expected an object, got ") + kind_name(v.kind));
  }
  return v;
}

double get_number(const Value& obj, const std::string& path,
                  const std::string& key, double dflt) {
  const Value* v = obj.find(key);
  if (v == nullptr) return dflt;
  if (!v->is_number()) {
    fail(path + "." + key,
         std::string("expected a number, got ") + kind_name(v->kind));
  }
  return v->num;
}

std::int64_t get_int(const Value& obj, const std::string& path,
                     const std::string& key, std::int64_t dflt) {
  const double d = get_number(obj, path, key, static_cast<double>(dflt));
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) fail(path + "." + key, "expected an integer");
  return i;
}

bool get_bool(const Value& obj, const std::string& path,
              const std::string& key, bool dflt) {
  const Value* v = obj.find(key);
  if (v == nullptr) return dflt;
  if (v->kind != Value::Kind::kBool) {
    fail(path + "." + key,
         std::string("expected true/false, got ") + kind_name(v->kind));
  }
  return v->boolean;
}

std::string get_string(const Value& obj, const std::string& path,
                       const std::string& key, std::string dflt) {
  const Value* v = obj.find(key);
  if (v == nullptr) return dflt;
  if (!v->is_string()) {
    fail(path + "." + key,
         std::string("expected a string, got ") + kind_name(v->kind));
  }
  return v->str;
}

void require_positive(double v, const std::string& path) {
  if (!(v > 0)) fail(path, "must be > 0");
}

ChannelSpec parse_channel(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"type", "profile", "rtt_ms", "rate_mbps", "duration_s", "seed"});
  ChannelSpec c;
  c.type = get_string(v, path, "type", c.type);
  static const std::set<std::string> kTypes = {
      "embb", "urllc", "5g", "tsn", "wifi", "cisp", "fiber", "leo"};
  if (!kTypes.contains(c.type)) {
    fail(path + ".type", "unknown channel type '" + c.type +
                             "' (embb|urllc|5g|tsn|wifi|cisp|fiber|leo)");
  }
  c.profile = get_string(v, path, "profile", c.profile);
  if (c.type == "5g") {
    static const std::set<std::string> kProfiles = {
        "lowband-stationary", "lowband-driving", "mmwave-driving"};
    if (!kProfiles.contains(c.profile)) {
      fail(path + ".profile",
           "5g channels need profile: lowband-stationary|lowband-driving|"
           "mmwave-driving (got '" +
               c.profile + "')");
    }
  } else if (!c.profile.empty()) {
    fail(path + ".profile", "only valid for type \"5g\"");
  }
  c.rtt_ms = get_number(v, path, "rtt_ms", c.rtt_ms);
  c.rate_mbps = get_number(v, path, "rate_mbps", c.rate_mbps);
  c.duration_s = get_number(v, path, "duration_s", c.duration_s);
  c.seed = get_int(v, path, "seed", c.seed);
  return c;
}

PolicySpec parse_policy(const Value& v, const std::string& path) {
  PolicySpec p;
  if (v.is_string()) {
    p.name = v.str;
  } else if (v.is_object()) {
    check_keys(v, path,
               {"name", "preset", "cost_factor", "min_margin_ms",
                "max_queue_fill", "max_data_queue_fill", "queue_risk",
                "accelerate_control", "use_flow_priority"});
    p.name = get_string(v, path, "name", p.name);
    p.preset = get_string(v, path, "preset", p.preset);
    if (!p.preset.empty() && p.preset != "aggressive" &&
        p.preset != "web-tuned") {
      fail(path + ".preset", "expected aggressive|web-tuned");
    }
    p.cost_factor = get_number(v, path, "cost_factor", p.cost_factor);
    p.min_margin_ms = get_number(v, path, "min_margin_ms", p.min_margin_ms);
    p.max_queue_fill = get_number(v, path, "max_queue_fill", p.max_queue_fill);
    p.max_data_queue_fill =
        get_number(v, path, "max_data_queue_fill", p.max_data_queue_fill);
    p.queue_risk = get_number(v, path, "queue_risk", p.queue_risk);
    if (const Value* b = v.find("accelerate_control")) {
      if (b->kind != Value::Kind::kBool) {
        fail(path + ".accelerate_control", "expected true/false");
      }
      p.accelerate_control = b->boolean ? 1 : 0;
    }
    if (const Value* b = v.find("use_flow_priority")) {
      if (b->kind != Value::Kind::kBool) {
        fail(path + ".use_flow_priority", "expected true/false");
      }
      p.use_flow_priority = b->boolean ? 1 : 0;
    }
  } else {
    fail(path, std::string("expected a policy name or object, got ") +
                   kind_name(v.kind));
  }
  static const std::set<std::string> kPolicies = {
      "embb-only", "urllc-only", "round-robin", "weighted",  "min-delay",
      "dchannel",  "dchannel+prio", "msg-priority", "redundant",
      "cost-aware", "flow-binding"};
  if (!kPolicies.contains(p.name)) {
    fail(path + (v.is_object() ? ".name" : ""),
         "unknown steering policy '" + p.name + "'");
  }
  const bool has_dchannel_knobs =
      !p.preset.empty() || p.cost_factor >= 0 || p.min_margin_ms >= 0 ||
      p.max_queue_fill >= 0 || p.max_data_queue_fill >= 0 ||
      p.queue_risk >= 0 || p.accelerate_control >= 0 ||
      p.use_flow_priority >= 0;
  if (has_dchannel_knobs && p.name != "dchannel" && p.name != "dchannel+prio") {
    fail(path, "policy parameters are only valid for the dchannel family");
  }
  return p;
}

WebSpec parse_web(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"pages", "landing_fraction", "corpus_seed", "loads_per_page",
              "background_flows", "bg_upload_bytes", "bg_download_bytes",
              "bg_flow_priority", "per_load_timeout_s"});
  WebSpec w;
  w.pages = static_cast<int>(get_int(v, path, "pages", w.pages));
  if (w.pages <= 0) fail(path + ".pages", "must be > 0");
  w.landing_fraction =
      get_number(v, path, "landing_fraction", w.landing_fraction);
  if (w.landing_fraction < 0 || w.landing_fraction > 1) {
    fail(path + ".landing_fraction", "must be in [0, 1]");
  }
  w.corpus_seed = get_int(v, path, "corpus_seed", w.corpus_seed);
  w.loads_per_page =
      static_cast<int>(get_int(v, path, "loads_per_page", w.loads_per_page));
  if (w.loads_per_page <= 0) fail(path + ".loads_per_page", "must be > 0");
  w.background_flows =
      get_bool(v, path, "background_flows", w.background_flows);
  w.bg_upload_bytes = get_int(v, path, "bg_upload_bytes", w.bg_upload_bytes);
  w.bg_download_bytes =
      get_int(v, path, "bg_download_bytes", w.bg_download_bytes);
  w.bg_flow_priority =
      static_cast<int>(get_int(v, path, "bg_flow_priority", w.bg_flow_priority));
  w.per_load_timeout_s =
      get_number(v, path, "per_load_timeout_s", w.per_load_timeout_s);
  require_positive(w.per_load_timeout_s, path + ".per_load_timeout_s");
  return w;
}

VideoSpec parse_video(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"duration_s", "drain_s", "fps", "layer_kbps",
              "keyframe_interval", "decode_wait_ms", "lookahead_frames",
              "encoder_seed", "receiver_seed"});
  VideoSpec s;
  s.duration_s = get_number(v, path, "duration_s", s.duration_s);
  s.drain_s = get_number(v, path, "drain_s", s.drain_s);
  if (s.drain_s < 0) fail(path + ".drain_s", "must be >= 0");
  s.fps = static_cast<int>(get_int(v, path, "fps", s.fps));
  if (s.fps <= 0) fail(path + ".fps", "must be > 0");
  if (const Value* arr = v.find("layer_kbps")) {
    if (!arr->is_array() || arr->array.empty()) {
      fail(path + ".layer_kbps", "expected a non-empty array of numbers");
    }
    s.layer_kbps.clear();
    for (std::size_t i = 0; i < arr->array.size(); ++i) {
      const Value& e = arr->array[i];
      if (!e.is_number() || e.num <= 0) {
        fail(path + ".layer_kbps." + std::to_string(i),
             "expected a positive number");
      }
      s.layer_kbps.push_back(e.num);
    }
  }
  s.keyframe_interval = static_cast<int>(
      get_int(v, path, "keyframe_interval", s.keyframe_interval));
  if (s.keyframe_interval <= 0) fail(path + ".keyframe_interval", "must be > 0");
  s.decode_wait_ms = get_number(v, path, "decode_wait_ms", s.decode_wait_ms);
  if (s.decode_wait_ms < 0) fail(path + ".decode_wait_ms", "must be >= 0");
  s.lookahead_frames = static_cast<int>(
      get_int(v, path, "lookahead_frames", s.lookahead_frames));
  s.encoder_seed = get_int(v, path, "encoder_seed", s.encoder_seed);
  s.receiver_seed = get_int(v, path, "receiver_seed", s.receiver_seed);
  return s;
}

FaultSpec parse_fault(const Value& v, const std::string& path,
                      std::size_t num_channels) {
  require_object(v, path);
  check_keys(v, path,
             {"kind", "channel", "direction", "start_s", "duration_s",
              "rate_scale", "extra_delay_ms", "p_good_to_bad",
              "p_bad_to_good", "loss_in_bad", "loss_in_good", "seed",
              "period_s", "up_fraction"});
  FaultSpec f;
  f.kind = get_string(v, path, "kind", f.kind);
  static const std::set<std::string> kKinds = {
      "outage", "rate_cliff", "ge_burst", "delay_spike", "flap"};
  if (!kKinds.contains(f.kind)) {
    fail(path + ".kind",
         "unknown fault kind '" + f.kind +
             "' (outage|rate_cliff|ge_burst|delay_spike|flap)");
  }
  f.channel = get_int(v, path, "channel", f.channel);
  if (f.channel < 0 ||
      f.channel >= static_cast<std::int64_t>(num_channels)) {
    fail(path + ".channel",
         "out of range (scenario has " + std::to_string(num_channels) +
             " channels)");
  }
  f.direction = get_string(v, path, "direction", f.direction);
  if (f.direction != "down" && f.direction != "up" &&
      f.direction != "both") {
    fail(path + ".direction", "expected down|up|both");
  }
  f.start_s = get_number(v, path, "start_s", f.start_s);
  if (f.start_s < 0) fail(path + ".start_s", "must be >= 0");
  f.duration_s = get_number(v, path, "duration_s", f.duration_s);
  require_positive(f.duration_s, path + ".duration_s");

  // Kind-specific knobs may only appear for their kind: a spec that sets
  // rate_scale on an outage is almost certainly a typo'd kind.
  const auto only_for = [&](const char* key, bool allowed,
                            const char* owner) {
    if (v.find(key) != nullptr && !allowed) {
      fail(path + "." + key,
           std::string("only valid for kind \"") + owner + "\"");
    }
  };
  only_for("rate_scale", f.kind == "rate_cliff", "rate_cliff");
  only_for("extra_delay_ms", f.kind == "delay_spike", "delay_spike");
  const bool ge = f.kind == "ge_burst";
  only_for("p_good_to_bad", ge, "ge_burst");
  only_for("p_bad_to_good", ge, "ge_burst");
  only_for("loss_in_bad", ge, "ge_burst");
  only_for("loss_in_good", ge, "ge_burst");
  const bool flap = f.kind == "flap";
  only_for("period_s", flap, "flap");
  only_for("up_fraction", flap, "flap");
  if (v.find("seed") != nullptr && !ge && !flap) {
    fail(path + ".seed", "only valid for kinds \"ge_burst\" and \"flap\"");
  }

  f.rate_scale = get_number(v, path, "rate_scale", f.rate_scale);
  if (f.kind == "rate_cliff" &&
      (f.rate_scale <= 0 || f.rate_scale >= 1)) {
    fail(path + ".rate_scale", "must be in (0, 1)");
  }
  f.extra_delay_ms = get_number(v, path, "extra_delay_ms", f.extra_delay_ms);
  if (f.kind == "delay_spike") {
    require_positive(f.extra_delay_ms, path + ".extra_delay_ms");
  }
  f.p_good_to_bad = get_number(v, path, "p_good_to_bad", f.p_good_to_bad);
  f.p_bad_to_good = get_number(v, path, "p_bad_to_good", f.p_bad_to_good);
  f.loss_in_bad = get_number(v, path, "loss_in_bad", f.loss_in_bad);
  f.loss_in_good = get_number(v, path, "loss_in_good", f.loss_in_good);
  if (ge) {
    const auto prob = [&](double p, const char* key) {
      if (p < 0 || p > 1) fail(path + "." + key, "must be in [0, 1]");
    };
    prob(f.p_good_to_bad, "p_good_to_bad");
    prob(f.p_bad_to_good, "p_bad_to_good");
    prob(f.loss_in_bad, "loss_in_bad");
    prob(f.loss_in_good, "loss_in_good");
    if (f.p_good_to_bad <= 0 || f.loss_in_bad <= 0) {
      fail(path, "ge_burst needs p_good_to_bad > 0 and loss_in_bad > 0");
    }
  }
  f.seed = get_int(v, path, "seed", f.seed);
  if (f.seed < -1) fail(path + ".seed", "must be >= 0 (or -1 for default)");
  f.period_s = get_number(v, path, "period_s", f.period_s);
  if (flap) require_positive(f.period_s, path + ".period_s");
  f.up_fraction = get_number(v, path, "up_fraction", f.up_fraction);
  if (flap && (f.up_fraction <= 0 || f.up_fraction >= 1)) {
    fail(path + ".up_fraction", "must be in (0, 1)");
  }
  return f;
}

/// Same overlap rule FaultPlan::validate enforces, reported with JSON
/// paths: same-family windows (outage/flap both toggle availability) may
/// not overlap on the same channel + direction.
void check_fault_overlaps(const std::vector<FaultSpec>& faults,
                          const std::string& path) {
  const auto fault_family = [](const std::string& kind) {
    return (kind == "outage" || kind == "flap") ? std::string("availability")
                                                : kind;
  };
  const auto dirs_overlap = [](const std::string& a, const std::string& b) {
    return a == b || a == "both" || b == "both";
  };
  for (std::size_t i = 0; i < faults.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const FaultSpec& a = faults[j];
      const FaultSpec& b = faults[i];
      if (a.channel != b.channel) continue;
      if (!dirs_overlap(a.direction, b.direction)) continue;
      if (fault_family(a.kind) != fault_family(b.kind)) continue;
      if (b.start_s < a.start_s + a.duration_s &&
          a.start_s < b.start_s + b.duration_s) {
        fail(path + "." + std::to_string(i),
             "overlaps " + path + "." + std::to_string(j) + " (" + a.kind +
                 " on channel " + std::to_string(a.channel) + ")");
      }
    }
  }
}

CitySpec parse_city(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"users", "mix", "web", "video", "background", "churn", "steer"});
  CitySpec c;
  pop::PopulationSpec& p = c.population;
  p.users = get_int(v, path, "users", p.users);
  if (p.users < 0) fail(path + ".users", "must be >= 0");
  if (const Value* m = v.find("mix")) {
    const std::string mp = path + ".mix";
    require_object(*m, mp);
    check_keys(*m, mp, {"web", "video", "background"});
    p.mix.web = get_number(*m, mp, "web", p.mix.web);
    p.mix.video = get_number(*m, mp, "video", p.mix.video);
    p.mix.background = get_number(*m, mp, "background", p.mix.background);
    if (p.mix.web < 0 || p.mix.video < 0 || p.mix.background < 0) {
      fail(mp, "weights must be >= 0");
    }
    if (!(p.mix.web + p.mix.video + p.mix.background > 0)) {
      fail(mp, "weights must sum > 0");
    }
  }
  if (const Value* w = v.find("web")) {
    const std::string wp = path + ".web";
    require_object(*w, wp);
    check_keys(*w, wp,
               {"think_time_s", "min_levels", "max_levels", "min_objects",
                "max_objects", "html_min_bytes", "html_max_bytes",
                "object_xm_bytes", "object_alpha", "object_cap_bytes"});
    p.web.think_time_s = get_number(*w, wp, "think_time_s", p.web.think_time_s);
    require_positive(p.web.think_time_s, wp + ".think_time_s");
    p.web.min_levels =
        static_cast<int>(get_int(*w, wp, "min_levels", p.web.min_levels));
    p.web.max_levels =
        static_cast<int>(get_int(*w, wp, "max_levels", p.web.max_levels));
    if (p.web.min_levels < 1 || p.web.max_levels < p.web.min_levels) {
      fail(wp, "levels must satisfy 1 <= min_levels <= max_levels");
    }
    p.web.min_objects =
        static_cast<int>(get_int(*w, wp, "min_objects", p.web.min_objects));
    p.web.max_objects =
        static_cast<int>(get_int(*w, wp, "max_objects", p.web.max_objects));
    if (p.web.min_objects < 1 || p.web.max_objects < p.web.min_objects) {
      fail(wp, "objects must satisfy 1 <= min_objects <= max_objects");
    }
    p.web.html_min_bytes =
        get_number(*w, wp, "html_min_bytes", p.web.html_min_bytes);
    p.web.html_max_bytes =
        get_number(*w, wp, "html_max_bytes", p.web.html_max_bytes);
    if (!(p.web.html_min_bytes > 0) ||
        p.web.html_max_bytes < p.web.html_min_bytes) {
      fail(wp, "html byte range invalid");
    }
    p.web.object_xm_bytes =
        get_number(*w, wp, "object_xm_bytes", p.web.object_xm_bytes);
    require_positive(p.web.object_xm_bytes, wp + ".object_xm_bytes");
    p.web.object_alpha = get_number(*w, wp, "object_alpha", p.web.object_alpha);
    require_positive(p.web.object_alpha, wp + ".object_alpha");
    p.web.object_cap_bytes =
        get_number(*w, wp, "object_cap_bytes", p.web.object_cap_bytes);
    if (p.web.object_cap_bytes < p.web.object_xm_bytes) {
      fail(wp + ".object_cap_bytes", "must be >= object_xm_bytes");
    }
  }
  if (const Value* vid = v.find("video")) {
    const std::string vp = path + ".video";
    require_object(*vid, vp);
    check_keys(*vid, vp, {"chunk_s", "kbps"});
    p.video.chunk_s = get_number(*vid, vp, "chunk_s", p.video.chunk_s);
    require_positive(p.video.chunk_s, vp + ".chunk_s");
    p.video.kbps = get_number(*vid, vp, "kbps", p.video.kbps);
    require_positive(p.video.kbps, vp + ".kbps");
  }
  if (const Value* bg = v.find("background")) {
    const std::string bp = path + ".background";
    require_object(*bg, bp);
    check_keys(*bg, bp, {"period_s", "xm_bytes", "alpha", "cap_bytes"});
    p.background.period_s = get_number(*bg, bp, "period_s",
                                       p.background.period_s);
    require_positive(p.background.period_s, bp + ".period_s");
    p.background.xm_bytes =
        get_number(*bg, bp, "xm_bytes", p.background.xm_bytes);
    require_positive(p.background.xm_bytes, bp + ".xm_bytes");
    p.background.alpha = get_number(*bg, bp, "alpha", p.background.alpha);
    require_positive(p.background.alpha, bp + ".alpha");
    p.background.cap_bytes =
        get_number(*bg, bp, "cap_bytes", p.background.cap_bytes);
    if (p.background.cap_bytes < p.background.xm_bytes) {
      fail(bp + ".cap_bytes", "must be >= xm_bytes");
    }
  }
  if (const Value* ch = v.find("churn")) {
    const std::string cp = path + ".churn";
    require_object(*ch, cp);
    check_keys(*ch, cp, {"arrival_rate_per_s", "mean_session_s"});
    p.churn.arrival_rate_per_s =
        get_number(*ch, cp, "arrival_rate_per_s", p.churn.arrival_rate_per_s);
    if (p.churn.arrival_rate_per_s < 0) {
      fail(cp + ".arrival_rate_per_s", "must be >= 0");
    }
    p.churn.mean_session_s =
        get_number(*ch, cp, "mean_session_s", p.churn.mean_session_s);
    if (p.churn.mean_session_s < 0) {
      fail(cp + ".mean_session_s", "must be >= 0");
    }
  }
  if (const Value* st = v.find("steer")) {
    const std::string sp = path + ".steer";
    require_object(*st, sp);
    check_keys(*st, sp, {"enabled", "delay_bound_ms", "max_bytes"});
    p.steer.enabled = get_bool(*st, sp, "enabled", p.steer.enabled);
    p.steer.delay_bound_ms =
        get_number(*st, sp, "delay_bound_ms", p.steer.delay_bound_ms);
    require_positive(p.steer.delay_bound_ms, sp + ".delay_bound_ms");
    p.steer.max_bytes = get_number(*st, sp, "max_bytes", p.steer.max_bytes);
    if (p.steer.max_bytes < 0) fail(sp + ".max_bytes", "must be >= 0");
  }
  // Backstop: anything the path-qualified checks above missed surfaces
  // with the block's path rather than a bare invalid_argument.
  try {
    p.validate();
  } catch (const std::invalid_argument& e) {
    fail(path, e.what());
  }
  return c;
}

TelemetrySpec parse_telemetry(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"enabled", "period_ms", "series", "audit", "max_samples",
              "max_series", "audit_capacity", "out_prefix"});
  TelemetrySpec t;
  t.enabled = get_bool(v, path, "enabled", true);  // presence = opt-in
  t.period_ms = get_number(v, path, "period_ms", t.period_ms);
  require_positive(t.period_ms, path + ".period_ms");
  if (const Value* arr = v.find("series")) {
    if (!arr->is_array()) {
      fail(path + ".series", "expected an array of probe-group names");
    }
    static const std::set<std::string> kGroups = {
        "channel", "link", "steer", "transport", "fault", "pop"};
    for (std::size_t i = 0; i < arr->array.size(); ++i) {
      const Value& e = arr->array[i];
      if (!e.is_string() || !kGroups.contains(e.str)) {
        fail(path + ".series." + std::to_string(i),
             "expected channel|link|steer|transport|fault|pop");
      }
      t.series.push_back(e.str);
    }
  }
  t.audit = get_bool(v, path, "audit", t.audit);
  t.max_samples = get_int(v, path, "max_samples", t.max_samples);
  if (t.max_samples <= 0) fail(path + ".max_samples", "must be > 0");
  t.max_series = get_int(v, path, "max_series", t.max_series);
  if (t.max_series <= 0) fail(path + ".max_series", "must be > 0");
  t.audit_capacity = get_int(v, path, "audit_capacity", t.audit_capacity);
  if (t.audit_capacity <= 0) fail(path + ".audit_capacity", "must be > 0");
  t.out_prefix = get_string(v, path, "out_prefix", t.out_prefix);
  return t;
}

SpansSpec parse_spans(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"enabled", "tail_quantile", "tail_budget", "reservoir_budget",
              "reservoir_period", "warmup"});
  SpansSpec s;
  s.enabled = get_bool(v, path, "enabled", true);  // presence = opt-in
  s.tail_quantile = get_number(v, path, "tail_quantile", s.tail_quantile);
  if (s.tail_quantile < 0 || s.tail_quantile > 100) {
    fail(path + ".tail_quantile", "must be in [0, 100]");
  }
  s.tail_budget = get_int(v, path, "tail_budget", s.tail_budget);
  if (s.tail_budget < 0) fail(path + ".tail_budget", "must be >= 0");
  s.reservoir_budget =
      get_int(v, path, "reservoir_budget", s.reservoir_budget);
  if (s.reservoir_budget < 0) {
    fail(path + ".reservoir_budget", "must be >= 0");
  }
  s.reservoir_period =
      get_int(v, path, "reservoir_period", s.reservoir_period);
  if (s.reservoir_period <= 0) {
    fail(path + ".reservoir_period", "must be > 0");
  }
  s.warmup = get_int(v, path, "warmup", s.warmup);
  if (s.warmup < 0) fail(path + ".warmup", "must be >= 0");
  return s;
}

std::string policy_json(const PolicySpec& p) {
  using obs::json::number;
  using obs::json::quote;
  std::string out = "{\"name\":" + quote(p.name);
  if (!p.preset.empty()) out += ",\"preset\":" + quote(p.preset);
  if (p.cost_factor >= 0) out += ",\"cost_factor\":" + number(p.cost_factor);
  if (p.min_margin_ms >= 0) {
    out += ",\"min_margin_ms\":" + number(p.min_margin_ms);
  }
  if (p.max_queue_fill >= 0) {
    out += ",\"max_queue_fill\":" + number(p.max_queue_fill);
  }
  if (p.max_data_queue_fill >= 0) {
    out += ",\"max_data_queue_fill\":" + number(p.max_data_queue_fill);
  }
  if (p.queue_risk >= 0) out += ",\"queue_risk\":" + number(p.queue_risk);
  if (p.accelerate_control >= 0) {
    out += std::string(",\"accelerate_control\":") +
           (p.accelerate_control != 0 ? "true" : "false");
  }
  if (p.use_flow_priority >= 0) {
    out += std::string(",\"use_flow_priority\":") +
           (p.use_flow_priority != 0 ? "true" : "false");
  }
  out += '}';
  return out;
}

}  // namespace

std::string PolicySpec::label() const {
  if (name == "dchannel+prio") return name;
  if (name == "dchannel" && use_flow_priority > 0) return "dchannel+prio";
  return name;
}

ScenarioSpec ScenarioSpec::from_json(const obs::json::Value& v) {
  require_object(v, "scenario");
  check_keys(v, "",
             {"name", "workload", "duration_s", "seed", "cca", "channels",
              "policy", "up_policy", "down_policy", "resequence_hold_ms",
              "web", "video", "bulk", "city", "faults", "telemetry",
              "spans"});
  ScenarioSpec s;
  s.name = get_string(v, "", "name", s.name);
  s.workload = get_string(v, "", "workload", s.workload);
  if (s.workload != "bulk" && s.workload != "video" && s.workload != "web" &&
      s.workload != "city") {
    fail("workload",
         "expected bulk|video|web|city (got '" + s.workload + "')");
  }
  s.duration_s = get_number(v, "", "duration_s", s.duration_s);
  require_positive(s.duration_s, "duration_s");
  const std::int64_t seed = get_int(v, "", "seed", static_cast<std::int64_t>(s.seed));
  if (seed < 0) fail("seed", "must be >= 0");
  s.seed = static_cast<std::uint64_t>(seed);
  s.cca = get_string(v, "", "cca", s.cca);
  static const std::set<std::string> kCcas = {"cubic", "bbr", "vegas",
                                             "vivace", "hvc"};
  if (!kCcas.contains(s.cca)) {
    fail("cca", "unknown CCA '" + s.cca + "' (cubic|bbr|vegas|vivace|hvc)");
  }
  if (const Value* channels = v.find("channels")) {
    if (!channels->is_array() || channels->array.empty()) {
      fail("channels", "expected a non-empty array");
    }
    for (std::size_t i = 0; i < channels->array.size(); ++i) {
      s.channels.push_back(parse_channel(channels->array[i],
                                         "channels." + std::to_string(i)));
    }
  } else {
    ChannelSpec embb;
    embb.type = "embb";
    ChannelSpec urllc;
    urllc.type = "urllc";
    s.channels.push_back(embb);
    s.channels.push_back(urllc);
  }
  if (const Value* p = v.find("policy")) {
    s.up_policy = parse_policy(*p, "policy");
    s.down_policy = s.up_policy;
  }
  if (const Value* p = v.find("up_policy")) {
    s.up_policy = parse_policy(*p, "up_policy");
  }
  if (const Value* p = v.find("down_policy")) {
    s.down_policy = parse_policy(*p, "down_policy");
  }
  s.resequence_hold_ms =
      get_number(v, "", "resequence_hold_ms", s.resequence_hold_ms);
  if (s.resequence_hold_ms < 0) fail("resequence_hold_ms", "must be >= 0");
  if (const Value* w = v.find("web")) s.web = parse_web(*w, "web");
  if (const Value* vid = v.find("video")) s.video = parse_video(*vid, "video");
  if (const Value* b = v.find("bulk")) {
    require_object(*b, "bulk");
    check_keys(*b, "bulk", {"duration_s"});
    s.bulk.duration_s = get_number(*b, "bulk", "duration_s", s.bulk.duration_s);
  }
  if (const Value* c = v.find("city")) s.city = parse_city(*c, "city");
  if (const Value* faults = v.find("faults")) {
    if (!faults->is_array()) {
      fail("faults", "expected an array of fault objects");
    }
    for (std::size_t i = 0; i < faults->array.size(); ++i) {
      s.faults.push_back(parse_fault(faults->array[i],
                                     "faults." + std::to_string(i),
                                     s.channels.size()));
    }
    check_fault_overlaps(s.faults, "faults");
  }
  if (const Value* t = v.find("telemetry")) {
    s.telemetry = parse_telemetry(*t, "telemetry");
  }
  if (const Value* sp = v.find("spans")) {
    s.spans = parse_spans(*sp, "spans");
  }
  return s;
}

ScenarioSpec ScenarioSpec::from_json_text(std::string_view text) {
  obs::json::Value v;
  if (!obs::json::parse(text, &v)) {
    throw SpecError("scenario: malformed JSON (syntax error)");
  }
  return from_json(v);
}

ScenarioSpec ScenarioSpec::from_file(const std::string& path) {
  const std::string text = read_file(path);  // error already carries path
  try {
    return from_json_text(text);
  } catch (const SpecError& e) {
    throw SpecError(path + ": " + e.what());
  }
}

std::string ScenarioSpec::to_json() const {
  using obs::json::number;
  using obs::json::quote;
  std::string out = "{";
  out += "\"name\":" + quote(name);
  out += ",\"workload\":" + quote(workload);
  out += ",\"duration_s\":" + number(duration_s);
  out += ",\"seed\":" + number(static_cast<std::uint64_t>(seed));
  out += ",\"cca\":" + quote(cca);
  out += ",\"channels\":[";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelSpec& c = channels[i];
    if (i > 0) out += ',';
    out += "{\"type\":" + quote(c.type);
    if (!c.profile.empty()) out += ",\"profile\":" + quote(c.profile);
    if (c.rtt_ms >= 0) out += ",\"rtt_ms\":" + number(c.rtt_ms);
    if (c.rate_mbps >= 0) out += ",\"rate_mbps\":" + number(c.rate_mbps);
    if (c.duration_s >= 0) out += ",\"duration_s\":" + number(c.duration_s);
    if (c.seed >= 0) out += ",\"seed\":" + number(c.seed);
    out += '}';
  }
  out += "],\"up_policy\":" + policy_json(up_policy);
  out += ",\"down_policy\":" + policy_json(down_policy);
  if (resequence_hold_ms > 0) {
    out += ",\"resequence_hold_ms\":" + number(resequence_hold_ms);
  }
  if (workload == "web") {
    out += ",\"web\":{";
    out += "\"pages\":" + number(static_cast<std::int64_t>(web.pages));
    out += ",\"landing_fraction\":" + number(web.landing_fraction);
    out += ",\"corpus_seed\":" + number(web.corpus_seed);
    out += ",\"loads_per_page\":" +
           number(static_cast<std::int64_t>(web.loads_per_page));
    out += std::string(",\"background_flows\":") +
           (web.background_flows ? "true" : "false");
    out += ",\"bg_upload_bytes\":" + number(web.bg_upload_bytes);
    out += ",\"bg_download_bytes\":" + number(web.bg_download_bytes);
    out += ",\"bg_flow_priority\":" +
           number(static_cast<std::int64_t>(web.bg_flow_priority));
    out += ",\"per_load_timeout_s\":" + number(web.per_load_timeout_s);
    out += '}';
  } else if (workload == "video") {
    out += ",\"video\":{";
    if (video.duration_s >= 0) {
      out += "\"duration_s\":" + number(video.duration_s) + ",";
    }
    out += "\"drain_s\":" + number(video.drain_s);
    out += ",\"fps\":" + number(static_cast<std::int64_t>(video.fps));
    out += ",\"layer_kbps\":[";
    for (std::size_t i = 0; i < video.layer_kbps.size(); ++i) {
      if (i > 0) out += ',';
      out += number(video.layer_kbps[i]);
    }
    out += "],\"keyframe_interval\":" +
           number(static_cast<std::int64_t>(video.keyframe_interval));
    out += ",\"decode_wait_ms\":" + number(video.decode_wait_ms);
    out += ",\"lookahead_frames\":" +
           number(static_cast<std::int64_t>(video.lookahead_frames));
    out += ",\"encoder_seed\":" + number(video.encoder_seed);
    out += ",\"receiver_seed\":" + number(video.receiver_seed);
    out += '}';
  } else if (workload == "bulk" && bulk.duration_s >= 0) {
    out += ",\"bulk\":{\"duration_s\":" + number(bulk.duration_s) + "}";
  } else if (workload == "city") {
    const pop::PopulationSpec& p = city.population;
    out += ",\"city\":{";
    out += "\"users\":" + number(p.users);
    out += ",\"mix\":{\"web\":" + number(p.mix.web);
    out += ",\"video\":" + number(p.mix.video);
    out += ",\"background\":" + number(p.mix.background) + "}";
    out += ",\"web\":{\"think_time_s\":" + number(p.web.think_time_s);
    out += ",\"min_levels\":" +
           number(static_cast<std::int64_t>(p.web.min_levels));
    out += ",\"max_levels\":" +
           number(static_cast<std::int64_t>(p.web.max_levels));
    out += ",\"min_objects\":" +
           number(static_cast<std::int64_t>(p.web.min_objects));
    out += ",\"max_objects\":" +
           number(static_cast<std::int64_t>(p.web.max_objects));
    out += ",\"html_min_bytes\":" + number(p.web.html_min_bytes);
    out += ",\"html_max_bytes\":" + number(p.web.html_max_bytes);
    out += ",\"object_xm_bytes\":" + number(p.web.object_xm_bytes);
    out += ",\"object_alpha\":" + number(p.web.object_alpha);
    out += ",\"object_cap_bytes\":" + number(p.web.object_cap_bytes) + "}";
    out += ",\"video\":{\"chunk_s\":" + number(p.video.chunk_s);
    out += ",\"kbps\":" + number(p.video.kbps) + "}";
    out += ",\"background\":{\"period_s\":" + number(p.background.period_s);
    out += ",\"xm_bytes\":" + number(p.background.xm_bytes);
    out += ",\"alpha\":" + number(p.background.alpha);
    out += ",\"cap_bytes\":" + number(p.background.cap_bytes) + "}";
    out += ",\"churn\":{\"arrival_rate_per_s\":" +
           number(p.churn.arrival_rate_per_s);
    out += ",\"mean_session_s\":" + number(p.churn.mean_session_s) + "}";
    out += std::string(",\"steer\":{\"enabled\":") +
           (p.steer.enabled ? "true" : "false");
    out += ",\"delay_bound_ms\":" + number(p.steer.delay_bound_ms);
    out += ",\"max_bytes\":" + number(p.steer.max_bytes) + "}";
    out += '}';
  }
  if (!faults.empty()) {
    out += ",\"faults\":[";
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const FaultSpec& f = faults[i];
      if (i > 0) out += ',';
      out += "{\"kind\":" + quote(f.kind);
      out += ",\"channel\":" + number(f.channel);
      if (f.direction != "both") {
        out += ",\"direction\":" + quote(f.direction);
      }
      out += ",\"start_s\":" + number(f.start_s);
      out += ",\"duration_s\":" + number(f.duration_s);
      // Kind-specific knobs only (the parser rejects foreign ones).
      if (f.kind == "rate_cliff") {
        out += ",\"rate_scale\":" + number(f.rate_scale);
      } else if (f.kind == "delay_spike") {
        out += ",\"extra_delay_ms\":" + number(f.extra_delay_ms);
      } else if (f.kind == "ge_burst") {
        out += ",\"p_good_to_bad\":" + number(f.p_good_to_bad);
        out += ",\"p_bad_to_good\":" + number(f.p_bad_to_good);
        out += ",\"loss_in_bad\":" + number(f.loss_in_bad);
        out += ",\"loss_in_good\":" + number(f.loss_in_good);
        if (f.seed >= 0) out += ",\"seed\":" + number(f.seed);
      } else if (f.kind == "flap") {
        out += ",\"period_s\":" + number(f.period_s);
        out += ",\"up_fraction\":" + number(f.up_fraction);
        if (f.seed >= 0) out += ",\"seed\":" + number(f.seed);
      }
      out += '}';
    }
    out += ']';
  }
  static const TelemetrySpec kTelemetryDefaults;
  if (!(telemetry == kTelemetryDefaults)) {
    out += ",\"telemetry\":{";
    out += std::string("\"enabled\":") + (telemetry.enabled ? "true" : "false");
    out += ",\"period_ms\":" + number(telemetry.period_ms);
    if (!telemetry.series.empty()) {
      out += ",\"series\":[";
      for (std::size_t i = 0; i < telemetry.series.size(); ++i) {
        if (i > 0) out += ',';
        out += quote(telemetry.series[i]);
      }
      out += ']';
    }
    out += std::string(",\"audit\":") + (telemetry.audit ? "true" : "false");
    if (telemetry.max_samples != kTelemetryDefaults.max_samples) {
      out += ",\"max_samples\":" + number(telemetry.max_samples);
    }
    if (telemetry.max_series != kTelemetryDefaults.max_series) {
      out += ",\"max_series\":" + number(telemetry.max_series);
    }
    if (telemetry.audit_capacity != kTelemetryDefaults.audit_capacity) {
      out += ",\"audit_capacity\":" + number(telemetry.audit_capacity);
    }
    if (!telemetry.out_prefix.empty()) {
      out += ",\"out_prefix\":" + quote(telemetry.out_prefix);
    }
    out += '}';
  }
  static const SpansSpec kSpansDefaults;
  if (!(spans == kSpansDefaults)) {
    out += ",\"spans\":{";
    out += std::string("\"enabled\":") + (spans.enabled ? "true" : "false");
    out += ",\"tail_quantile\":" + number(spans.tail_quantile);
    if (spans.tail_budget != kSpansDefaults.tail_budget) {
      out += ",\"tail_budget\":" + number(spans.tail_budget);
    }
    if (spans.reservoir_budget != kSpansDefaults.reservoir_budget) {
      out += ",\"reservoir_budget\":" + number(spans.reservoir_budget);
    }
    if (spans.reservoir_period != kSpansDefaults.reservoir_period) {
      out += ",\"reservoir_period\":" + number(spans.reservoir_period);
    }
    if (spans.warmup != kSpansDefaults.warmup) {
      out += ",\"warmup\":" + number(spans.warmup);
    }
    out += '}';
  }
  out += '}';
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError(path + ": cannot open file");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace hvc::exp
