#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hvc::trace {

CapacityTrace CapacityTrace::constant(RateBps rate, Duration period,
                                      std::int64_t mtu) {
  if (rate <= 0) throw std::invalid_argument("constant trace: rate <= 0");
  if (period <= 0) throw std::invalid_argument("constant trace: period <= 0");
  CapacityTrace t;
  t.period_ = period;
  t.mtu_ = mtu;
  const Duration gap = sim::transmission_time(mtu, rate);
  for (Time at = 0; at < period; at += gap) t.opportunities_.push_back(at);
  if (t.opportunities_.empty()) t.opportunities_.push_back(0);
  return t;
}

CapacityTrace CapacityTrace::from_opportunities(std::vector<Time> opportunities,
                                                Duration period,
                                                std::int64_t mtu) {
  if (period <= 0) throw std::invalid_argument("trace: period <= 0");
  std::sort(opportunities.begin(), opportunities.end());
  if (!opportunities.empty() &&
      (opportunities.front() < 0 || opportunities.back() >= period)) {
    throw std::invalid_argument("trace: opportunity outside [0, period)");
  }
  CapacityTrace t;
  t.opportunities_ = std::move(opportunities);
  t.period_ = period;
  t.mtu_ = mtu;
  return t;
}

CapacityTrace CapacityTrace::parse_mahimahi(const std::string& text,
                                            std::int64_t mtu) {
  std::vector<Time> opps;
  std::istringstream in(text);
  std::string line;
  std::int64_t last_ms = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::size_t pos = 0;
    const std::int64_t ms = std::stoll(line, &pos);
    if (ms < 0) throw std::invalid_argument("mahimahi trace: negative time");
    if (ms < last_ms) {
      throw std::invalid_argument("mahimahi trace: non-monotonic timestamps");
    }
    last_ms = ms;
    opps.push_back(sim::milliseconds(ms));
  }
  if (opps.empty()) throw std::invalid_argument("mahimahi trace: empty");
  // Mahimahi loops after the final timestamp; opportunities AT the final
  // timestamp belong to this period, so the period is last+1ms.
  const Duration period = sim::milliseconds(last_ms + 1);
  return from_opportunities(std::move(opps), period, mtu);
}

std::string CapacityTrace::to_mahimahi() const {
  std::ostringstream out;
  for (const Time t : opportunities_) {
    out << (t / 1'000'000) << '\n';
  }
  return out.str();
}

Time CapacityTrace::next_opportunity(Time t) const {
  if (opportunities_.empty()) return sim::kTimeNever;
  if (t < 0) t = -1;  // treat pre-start queries as "before cycle 0"
  const std::int64_t cycle = t < 0 ? 0 : t / period_;
  const Time offset = t - cycle * period_;
  auto it = std::upper_bound(opportunities_.begin(), opportunities_.end(),
                             offset);
  if (it != opportunities_.end()) return cycle * period_ + *it;
  return (cycle + 1) * period_ + opportunities_.front();
}

std::int64_t CapacityTrace::opportunities_in(Time from, Time to) const {
  if (opportunities_.empty() || to <= from) return 0;
  auto count_upto = [this](Time t) -> std::int64_t {
    // opportunities in [0, t]
    if (t < 0) return 0;
    const std::int64_t cycle = t / period_;
    const Time offset = t - cycle * period_;
    const auto within =
        std::upper_bound(opportunities_.begin(), opportunities_.end(),
                         offset) -
        opportunities_.begin();
    return cycle * static_cast<std::int64_t>(opportunities_.size()) + within;
  };
  return count_upto(to) - count_upto(from);
}

double CapacityTrace::average_rate_bps() const {
  if (opportunities_.empty()) return 0.0;
  const double bytes =
      static_cast<double>(opportunities_.size()) * static_cast<double>(mtu_);
  return bytes * 8.0 / sim::to_seconds(period_);
}

double CapacityTrace::min_windowed_rate_bps(Duration window) const {
  if (opportunities_.empty() || window <= 0) return 0.0;
  double min_rate = std::numeric_limits<double>::infinity();
  for (Time start = 0; start < period_; start += window / 4) {
    const auto n = opportunities_in(start, start + window);
    const double rate = static_cast<double>(n) * static_cast<double>(mtu_) *
                        8.0 / sim::to_seconds(window);
    min_rate = std::min(min_rate, rate);
  }
  return min_rate;
}

}  // namespace hvc::trace
