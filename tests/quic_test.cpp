// Tests for the MPQUIC-style multipath transport: path probing,
// scheduling policies, intents, reliability under loss, and ACK steering.
#include <gtest/gtest.h>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "quic/intents.hpp"
#include "quic/mp_connection.hpp"
#include "steer/basic_policies.hpp"

namespace hvc::quic {
namespace {

using sim::milliseconds;
using sim::seconds;

struct MpHarness {
  sim::Simulator s;
  std::unique_ptr<net::TwoHostNetwork> net;
  MpConnection conn;

  explicit MpHarness(MpConfig cfg = {},
                     channel::ChannelProfile embb =
                         channel::embb_constant_profile(),
                     channel::ChannelProfile urllc =
                         channel::urllc_profile())
      : net(std::make_unique<net::TwoHostNetwork>(
            s, std::make_unique<steer::PinnedChannelPolicy>(),
            std::make_unique<steer::PinnedChannelPolicy>())),
        conn([&] {
          net->add_channel(std::move(embb));
          net->add_channel(std::move(urllc));
          net->finalize();
          return MpConnection::make_pair(net->client(), net->server(), 2,
                                         cfg);
        }()) {}
};

TEST(MpEndpoint, ProbesLearnPerPathRtts) {
  MpHarness h;
  h.s.run_until(milliseconds(300));
  // Path 0 = eMBB (~50 ms RTT path), path 1 = URLLC (~5 ms).
  EXPECT_GT(h.conn.client->path_srtt(0), milliseconds(20));
  EXPECT_GT(h.conn.client->path_srtt(1), 0);
  EXPECT_LT(h.conn.client->path_srtt(1), h.conn.client->path_srtt(0));
}

TEST(MpEndpoint, DeliversSingleMessage) {
  MpHarness h;
  const auto stream = h.conn.client->open_stream(StreamIntents::bulk());
  bool got = false;
  h.conn.server->set_on_message(
      [&](const MpEndpoint::MessageEvent&) { got = true; });
  h.conn.client->send_message(stream, 100'000);
  h.s.run_until(seconds(5));
  EXPECT_TRUE(got);
  EXPECT_TRUE(h.conn.client->idle());
}

TEST(MpEndpoint, InteractiveMessagesRideFastPath) {
  MpConfig cfg;
  cfg.scheduler = SchedulerKind::kHvcAware;
  MpHarness h(cfg);
  h.s.run_until(milliseconds(200));  // let probes settle
  const auto stream =
      h.conn.server->open_stream(StreamIntents::interactive(0));
  sim::Summary lat;
  h.conn.client->set_on_message([&](const MpEndpoint::MessageEvent& ev) {
    lat.add(sim::to_millis(ev.completed - ev.sent_at));
  });
  for (int i = 0; i < 50; ++i) {
    h.s.at(milliseconds(200 + 40 * i),
           [&] { h.conn.server->send_message(stream, 1'000); });
  }
  h.s.run_until(seconds(5));
  ASSERT_EQ(lat.count(), 50u);
  // URLLC one-way ~2.5 ms + serialization; far below eMBB's 25 ms.
  EXPECT_LT(lat.percentile(95), 15.0);
  const auto& per_path = h.conn.server->stats().packets_per_path;
  EXPECT_GT(per_path[1], per_path[0]);
}

TEST(MpEndpoint, BulkPrefersWidePathOnceMeasured) {
  MpConfig cfg;
  cfg.scheduler = SchedulerKind::kHvcAware;
  MpHarness h(cfg);
  const auto stream = h.conn.server->open_stream(StreamIntents::bulk());
  for (int i = 0; i < 40; ++i) {
    h.s.at(milliseconds(100 * i),
           [&] { h.conn.server->send_message(stream, 300'000); });
  }
  h.s.run_until(seconds(8));
  const auto& per_path = h.conn.server->stats().packets_per_path;
  // Nearly all bulk data on the 60 Mbps path, not the 2 Mbps one.
  EXPECT_GT(per_path[0], per_path[1] * 10);
}

TEST(MpEndpoint, MinRttFloodsFastPathWithBulk) {
  MpConfig cfg;
  cfg.scheduler = SchedulerKind::kMinRtt;
  MpHarness h(cfg);
  const auto stream = h.conn.server->open_stream(StreamIntents::bulk());
  for (int i = 0; i < 40; ++i) {
    h.s.at(milliseconds(100 * i),
           [&] { h.conn.server->send_message(stream, 300'000); });
  }
  h.s.run_until(seconds(8));
  const auto& per_path = h.conn.server->stats().packets_per_path;
  // The heterogeneity-blind scheduler keeps pushing bulk into URLLC.
  EXPECT_GT(per_path[1], 100);
}

TEST(MpEndpoint, RealtimeOverflowsToWidePathWithinDeadline) {
  // 8 Mbps of realtime data: URLLC (2 Mbps) cannot carry it, but eMBB can
  // at ~30 ms — the scheduler must use it rather than queue into
  // staleness (the "receive lower-quality frames on time" philosophy cuts
  // both ways: a fat slower path beats a thin fast one for bulk realtime).
  MpConfig cfg;
  cfg.scheduler = SchedulerKind::kHvcAware;
  MpHarness h(cfg);
  const auto rt = h.conn.server->open_stream(StreamIntents::realtime(0, 80));
  sim::Summary lat;
  int delivered = 0;
  h.conn.client->set_on_message([&](const MpEndpoint::MessageEvent& ev) {
    lat.add(sim::to_millis(ev.completed - ev.sent_at));
    ++delivered;
  });
  for (int i = 0; i < 100; ++i) {
    h.s.at(milliseconds(200 + 20 * i),
           [&] { h.conn.server->send_message(rt, 20'000); });
  }
  h.s.run_until(seconds(10));
  EXPECT_EQ(delivered, 100);
  EXPECT_LT(lat.percentile(95), 100.0);
}

TEST(MpEndpoint, RealtimeDeadlineDropsStaleDataWhenNoPathCanCarryIt) {
  // Neither path can absorb 8 Mbps (eMBB squeezed to 1 Mbps): stale
  // chunks must be dropped at the deadline, never delivered seconds late.
  MpConfig cfg;
  cfg.scheduler = SchedulerKind::kHvcAware;
  MpHarness h(cfg,
              channel::embb_constant_profile(milliseconds(50),
                                             sim::mbps(1)));
  const auto rt = h.conn.server->open_stream(StreamIntents::realtime(0, 80));
  sim::Summary lat;
  int delivered = 0;
  h.conn.client->set_on_message([&](const MpEndpoint::MessageEvent& ev) {
    lat.add(sim::to_millis(ev.completed - ev.sent_at));
    ++delivered;
  });
  for (int i = 0; i < 100; ++i) {
    h.s.at(milliseconds(200 + 20 * i),
           [&] { h.conn.server->send_message(rt, 20'000); });
  }
  h.s.run_until(seconds(15));
  EXPECT_LT(delivered, 60);  // most messages dropped at the deadline
  // Whatever is delivered arrived within deadline-plus-transit bounds,
  // not after seconds of queueing.
  EXPECT_LT(lat.max(), 700.0);
}

TEST(MpEndpoint, RecoversFromWireLoss) {
  auto lossy_urllc = channel::urllc_profile();
  lossy_urllc.loss.bernoulli = 0.05;
  auto lossy_embb = channel::embb_constant_profile();
  lossy_embb.loss.bernoulli = 0.05;
  MpConfig cfg;
  MpHarness h(cfg, std::move(lossy_embb), std::move(lossy_urllc));
  const auto stream = h.conn.client->open_stream(StreamIntents::bulk());
  int got = 0;
  h.conn.server->set_on_message(
      [&](const MpEndpoint::MessageEvent&) { ++got; });
  for (int i = 0; i < 20; ++i) {
    h.s.at(milliseconds(100 * i),
           [&] { h.conn.client->send_message(stream, 50'000); });
  }
  h.s.run_until(seconds(30));
  EXPECT_EQ(got, 20);  // reliability despite 5% loss on both paths
  EXPECT_GT(h.conn.client->stats().retransmitted_chunks, 0);
}

TEST(MpEndpoint, AckFastPathReducesBulkRtt) {
  // With acks returning over URLLC, the eMBB path's measured RTT drops by
  // roughly the reverse-path difference.
  auto measure = [&](bool ack_fast) {
    MpConfig cfg;
    cfg.ack_on_fast_path = ack_fast;
    MpHarness h(cfg);
    const auto stream = h.conn.server->open_stream(StreamIntents::bulk());
    for (int i = 0; i < 20; ++i) {
      h.s.at(milliseconds(100 * i),
             [&] { h.conn.server->send_message(stream, 100'000); });
    }
    h.s.run_until(seconds(5));
    return h.conn.server->path_srtt(0);
  };
  const auto same_path = measure(false);
  const auto fast_path = measure(true);
  EXPECT_LT(fast_path, same_path);
  EXPECT_GT(same_path - fast_path, milliseconds(10));
}

TEST(MpEndpoint, EcfAggregatesBandwidthLikeMinRtt) {
  // ECF [30] estimates per-path completion; with a saturating bulk load
  // it still pushes data into the thin fast path — the paper's critique
  // of bandwidth-aggregating schedulers on starkly different channels.
  MpConfig cfg;
  cfg.scheduler = SchedulerKind::kEcf;
  MpHarness h(cfg);
  const auto stream = h.conn.server->open_stream(StreamIntents::bulk());
  for (int i = 0; i < 60; ++i) {
    h.s.at(milliseconds(50 * i),
           [&] { h.conn.server->send_message(stream, 400'000); });
  }
  h.s.run_until(seconds(8));
  const auto& per_path = h.conn.server->stats().packets_per_path;
  EXPECT_GT(per_path[1], 50);  // thin path gets stuffed
  EXPECT_GT(per_path[0], per_path[1]);  // but most goes on the wide one
}

TEST(Intents, FactoriesSetExpectedFields) {
  const auto b = StreamIntents::bulk();
  EXPECT_EQ(b.traffic, TrafficClass::kBulk);
  const auto i = StreamIntents::interactive(2);
  EXPECT_EQ(i.traffic, TrafficClass::kInteractive);
  EXPECT_EQ(i.priority, 2);
  const auto r = StreamIntents::realtime(0, 50);
  EXPECT_EQ(r.traffic, TrafficClass::kRealtime);
  EXPECT_EQ(r.deadline_ms, 50);
  EXPECT_TRUE(r.incremental);
}

TEST(MpEndpoint, UnknownStreamRejected) {
  MpHarness h;
  EXPECT_EQ(h.conn.client->send_message(999, 1000), 0u);
}

}  // namespace
}  // namespace hvc::quic
