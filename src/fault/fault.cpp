#include "fault/fault.hpp"

#include <stdexcept>
#include <string>

#include "sim/rng.hpp"

namespace hvc::fault {

namespace {

[[noreturn]] void fail(std::size_t index, const std::string& msg) {
  throw std::invalid_argument("fault event " + std::to_string(index) + ": " +
                              msg);
}

/// Outage and flap both toggle link availability, so they may not overlap
/// on the same link; the other kinds each own an independent knob.
[[nodiscard]] int family(FaultKind k) {
  switch (k) {
    case FaultKind::kOutage:
    case FaultKind::kFlap:
      return 0;
    case FaultKind::kRateCliff:
      return 1;
    case FaultKind::kGeBurst:
      return 2;
    case FaultKind::kDelaySpike:
      return 3;
  }
  return -1;
}

[[nodiscard]] bool dirs_overlap(FaultDir a, FaultDir b) {
  return a == b || a == FaultDir::kBoth || b == FaultDir::kBoth;
}

}  // namespace

const char* kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kRateCliff:
      return "rate_cliff";
    case FaultKind::kGeBurst:
      return "ge_burst";
    case FaultKind::kDelaySpike:
      return "delay_spike";
    case FaultKind::kFlap:
      return "flap";
  }
  return "unknown";
}

const char* dir_name(FaultDir d) {
  switch (d) {
    case FaultDir::kDownlink:
      return "down";
    case FaultDir::kUplink:
      return "up";
    case FaultDir::kBoth:
      return "both";
  }
  return "unknown";
}

void FaultPlan::validate(std::size_t num_channels) const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.channel >= num_channels) {
      fail(i, "channel " + std::to_string(e.channel) +
                  " out of range (have " + std::to_string(num_channels) +
                  " channels)");
    }
    if (e.start < 0) fail(i, "start must be >= 0");
    if (e.duration <= 0) fail(i, "duration must be > 0");
    switch (e.kind) {
      case FaultKind::kOutage:
        break;
      case FaultKind::kRateCliff:
        if (e.rate_scale <= 0.0 || e.rate_scale >= 1.0) {
          fail(i, "rate_scale must be in (0, 1)");
        }
        break;
      case FaultKind::kGeBurst:
        if (e.loss.lossless()) {
          fail(i, "ge_burst episode has a lossless loss config");
        }
        break;
      case FaultKind::kDelaySpike:
        if (e.extra_delay <= 0) fail(i, "extra_delay must be > 0");
        break;
      case FaultKind::kFlap:
        if (e.flap_period <= 0) fail(i, "flap period must be > 0");
        if (e.flap_up_fraction <= 0.0 || e.flap_up_fraction >= 1.0) {
          fail(i, "flap up_fraction must be in (0, 1)");
        }
        break;
    }
    for (std::size_t j = 0; j < i; ++j) {
      const FaultEvent& p = events[j];
      if (p.channel != e.channel) continue;
      if (!dirs_overlap(p.dir, e.dir)) continue;
      if (family(p.kind) != family(e.kind)) continue;
      if (e.start < p.end() && p.start < e.end()) {
        fail(i, std::string("overlaps event ") + std::to_string(j) + " (" +
                    kind_name(p.kind) + " on channel " +
                    std::to_string(p.channel) + ")");
      }
    }
  }
}

FaultPlan FaultPlan::fuzzed(std::uint64_t seed, std::size_t num_channels,
                            sim::Duration horizon) {
  sim::Rng rng(seed ^ 0x6661756c74ULL);  // distinct stream per purpose
  FaultPlan plan;
  if (num_channels == 0 || horizon <= 0) return plan;
  const int n = static_cast<int>(rng.uniform_int(1, 4));
  // Disjoint time slices guarantee validity whatever kinds/channels the
  // events land on (same-family overlap is impossible across slices).
  const sim::Duration slice = horizon / n;
  for (int i = 0; i < n; ++i) {
    FaultEvent e;
    e.kind = static_cast<FaultKind>(rng.uniform_int(0, 4));
    e.channel =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(num_channels) - 1));
    e.dir = static_cast<FaultDir>(rng.uniform_int(0, 2));
    const sim::Time slice_start = static_cast<sim::Time>(i) * slice;
    // Leave at least a quarter of the slice for the event to run in.
    const sim::Duration lead =
        static_cast<sim::Duration>(rng.uniform() * 0.5 * static_cast<double>(slice));
    e.start = slice_start + lead;
    e.duration = std::max<sim::Duration>(
        static_cast<sim::Duration>(rng.uniform(0.25, 1.0) *
                                   static_cast<double>(slice - lead)),
        sim::milliseconds(10));
    switch (e.kind) {
      case FaultKind::kOutage:
        break;
      case FaultKind::kRateCliff:
        e.rate_scale = rng.uniform(0.05, 0.5);
        break;
      case FaultKind::kGeBurst:
        e.loss.ge_p_good_to_bad = rng.uniform(0.01, 0.2);
        e.loss.ge_p_bad_to_good = rng.uniform(0.1, 0.5);
        e.loss.ge_loss_in_bad = rng.uniform(0.5, 1.0);
        e.loss_seed = rng.next_u64();
        break;
      case FaultKind::kDelaySpike:
        e.extra_delay = sim::milliseconds(rng.uniform_int(20, 300));
        break;
      case FaultKind::kFlap:
        e.flap_period = std::max<sim::Duration>(e.duration / 4,
                                                sim::milliseconds(20));
        e.flap_up_fraction = rng.uniform(0.3, 0.7);
        e.flap_seed = rng.chance(0.5) ? rng.next_u64() : 0;
        break;
    }
    plan.events.push_back(e);
  }
  plan.validate(num_channels);
  return plan;
}

}  // namespace hvc::fault
