#include "channel/profile.hpp"

namespace hvc::channel {

using sim::Duration;
using sim::RateBps;
using trace::CapacityTrace;

ChannelProfile urllc_profile(Duration rtt, RateBps rate) {
  ChannelProfile p;
  p.name = "urllc";
  // URLLC is engineered for small packets (32-250 B per 3GPP, §2.1): use
  // 250 B delivery-opportunity granularity so ACK-sized packets see
  // sub-millisecond service rather than waiting out a 1500 B slot.
  p.capacity_down = CapacityTrace::constant(rate, sim::seconds(1), 250);
  p.capacity_up = CapacityTrace::constant(rate, sim::seconds(1), 250);
  p.owd = rtt / 2;
  // URLLC is engineered for small packets; keep the buffer shallow so the
  // channel reports pressure quickly rather than hoarding a deep queue.
  p.queue_limit_bytes = 64 * 1024;
  p.reliable = true;
  return p;
}

ChannelProfile embb_constant_profile(Duration rtt, RateBps rate) {
  ChannelProfile p;
  p.name = "embb";
  p.capacity_down = CapacityTrace::constant(rate);
  p.capacity_up = CapacityTrace::constant(rate / 2);
  p.owd = rtt / 2;
  // ~2 BDP of buffer (60 Mbps x 50 ms = 375 kB BDP): the conventional
  // emulation choice (Pantheon/Mahimahi), bounding bufferbloat to ~100 ms.
  p.queue_limit_bytes = 750 * 1024;
  return p;
}

ChannelProfile embb_trace_profile(trace::FiveGProfile profile,
                                  Duration duration, std::uint64_t seed) {
  ChannelProfile p;
  p.name = std::string("embb-") + trace::to_string(profile);
  p.capacity_down = trace::make_5g_trace(profile, duration, seed);
  // Uplink: same time-variation class but ~1/4 the rate, distinct seed so
  // up/down fades are not synchronized.
  auto up_model = trace::five_g_model(profile);
  for (auto& s : up_model.states) s.mean_rate /= 4;
  p.capacity_up = trace::generate_markov_trace(up_model, duration, seed + 1);
  p.owd = trace::embb_base_owd(profile);
  p.queue_limit_bytes = 4 * 1024 * 1024;
  return p;
}

ChannelProfile wifi_tsn_profile(RateBps rate, Duration rtt) {
  ChannelProfile p;
  p.name = "wifi-tsn";
  // TSN time-aware slots are short and frequent: fine-grained service.
  p.capacity_down = CapacityTrace::constant(rate, sim::seconds(1), 250);
  p.capacity_up = CapacityTrace::constant(rate, sim::seconds(1), 250);
  p.owd = rtt / 2;
  p.queue_limit_bytes = 48 * 1024;
  p.reliable = true;
  return p;
}

std::pair<ChannelProfile, ChannelProfile> wifi_tsn_gated_pair(
    const trace::TsnSchedule& schedule, Duration rtt) {
  ChannelProfile tsn;
  tsn.name = "wifi-tsn-slice";
  tsn.capacity_down = trace::tsn_slice_trace(schedule);
  tsn.capacity_up = trace::tsn_slice_trace(schedule);
  tsn.owd = rtt / 2;
  tsn.queue_limit_bytes = 32 * 1024;
  tsn.reliable = true;

  ChannelProfile be;
  be.name = "wifi-best-effort";
  be.capacity_down = trace::best_effort_slice_trace(schedule);
  be.capacity_up = trace::best_effort_slice_trace(schedule);
  be.owd = rtt / 2;
  be.queue_limit_bytes = 2 * 1024 * 1024;
  // The contended share still sees occasional burst loss.
  be.loss.ge_p_good_to_bad = 0.002;
  be.loss.ge_p_bad_to_good = 0.15;
  be.loss.ge_loss_in_bad = 0.05;
  return {tsn, be};
}

ChannelProfile wifi_contended_profile(RateBps rate, Duration rtt,
                                      double burst_loss) {
  ChannelProfile p;
  p.name = "wifi";
  p.capacity_down = CapacityTrace::constant(rate);
  p.capacity_up = CapacityTrace::constant(rate);
  p.owd = rtt / 2;
  p.queue_limit_bytes = 2 * 1024 * 1024;
  p.loss.ge_p_good_to_bad = 0.005;
  p.loss.ge_p_bad_to_good = 0.15;
  p.loss.ge_loss_in_bad = burst_loss;
  return p;
}

ChannelProfile cisp_profile(Duration rtt, RateBps rate, double cost_per_mb) {
  ChannelProfile p;
  p.name = "cisp";
  p.capacity_down = CapacityTrace::constant(rate);
  p.capacity_up = CapacityTrace::constant(rate);
  p.owd = rtt / 2;
  p.queue_limit_bytes = 256 * 1024;
  p.cost_per_megabyte = cost_per_mb;
  // Microwave: weather-sensitive, mildly lossy.
  p.loss.bernoulli = 0.001;
  return p;
}

ChannelProfile fiber_profile(Duration rtt, RateBps rate) {
  ChannelProfile p;
  p.name = "fiber";
  p.capacity_down = CapacityTrace::constant(rate);
  p.capacity_up = CapacityTrace::constant(rate);
  p.owd = rtt / 2;
  p.queue_limit_bytes = 8 * 1024 * 1024;
  return p;
}

ChannelProfile leo_profile(std::uint64_t seed, Duration duration) {
  ChannelProfile p;
  p.name = "leo";
  trace::MarkovRateModel m;
  m.states = {
      {"beam", sim::mbps(180), 0.15, sim::milliseconds(12000), 0, {0.0, 1.0}},
      {"handover", sim::mbps(25), 0.3, sim::milliseconds(600),
       sim::milliseconds(1500), {1.0, 0.0}},
  };
  p.capacity_down = trace::generate_markov_trace(m, duration, seed);
  p.capacity_up = trace::generate_markov_trace(m, duration, seed + 1);
  p.owd = sim::milliseconds(18);
  p.queue_limit_bytes = 4 * 1024 * 1024;
  p.loss.bernoulli = 0.002;
  return p;
}

}  // namespace hvc::channel
