file(REMOVE_RECURSE
  "CMakeFiles/ablation_resequencer.dir/ablation_resequencer.cpp.o"
  "CMakeFiles/ablation_resequencer.dir/ablation_resequencer.cpp.o.d"
  "ablation_resequencer"
  "ablation_resequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
