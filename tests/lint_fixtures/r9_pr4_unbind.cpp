// R9 seed: the PR 4 tracer-unbind bug, reduced. A scoped helper restores
// a thread_local binding by writing nullptr unconditionally, clobbering
// any outer scope's binding instead of restoring it. The guarded reset
// in ~Fx9bTracer is the fixed shape and must NOT be flagged.
namespace fx9b {

struct Fx9bTracer {
  static thread_local Fx9bTracer* active_;
  void enable() { active_ = this; }
  ~Fx9bTracer() {
    if (active_ == this) active_ = nullptr;
  }
};
thread_local Fx9bTracer* Fx9bTracer::active_ = nullptr;

struct Fx9bScope {
  ~Fx9bScope() {
    Fx9bTracer::active_ = nullptr;
  }
};

}  // namespace fx9b
