# Empty dependencies file for hvc_transport.
# This may be replaced when dependencies are built.
