// TCP BBR v1 [14]: model-based congestion control around two estimators —
// windowed-max delivery rate (BtlBw) and windowed-min RTT (RTprop) — with
// a pacing-gain state machine (STARTUP/DRAIN/PROBE_BW/PROBE_RTT).
//
// This implementation keeps the full estimator/state-machine structure
// because Figure 1's pathology lives there: packet steering feeds the
// RTprop filter 5 ms URLLC samples while the bulk of traffic rides a 50 ms
// channel, so BDP = BtlBw × RTprop collapses and the inflight cap strangles
// throughput (§3.1, Fig. 1a/1b).
#pragma once

#include "sim/stats.hpp"
#include "transport/cca.hpp"

namespace hvc::transport {

struct BbrConfig {
  double startup_gain = 2.885;         ///< 2/ln(2)
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  sim::Duration min_rtt_window = sim::seconds(10);
  sim::Duration probe_rtt_duration = sim::milliseconds(200);
  int bw_window_rounds = 10;
  std::int64_t min_cwnd = 4 * kMss;
  std::int64_t initial_cwnd = 10 * kMss;
};

class Bbr final : public CcAlgorithm {
 public:
  explicit Bbr(BbrConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "bbr"; }
  void on_packet_sent(sim::Time now, std::int64_t bytes,
                      std::int64_t bytes_in_flight) override;
  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  [[nodiscard]] std::int64_t cwnd_bytes() const override;
  [[nodiscard]] double pacing_rate_bps() const override;

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] double btl_bw_bps() const;
  [[nodiscard]] sim::Duration rt_prop() const;
  [[nodiscard]] std::int64_t bdp_bytes() const;

 private:
  void update_btl_bw(const AckEvent& ev);
  void update_rt_prop(const AckEvent& ev);
  void check_full_pipe(const AckEvent& ev);
  void advance_cycle(const AckEvent& ev);
  void maybe_enter_or_exit_probe_rtt(const AckEvent& ev);

  BbrConfig cfg_;
  Mode mode_ = Mode::kStartup;

  // BtlBw: max filter over rounds (we window by round count).
  struct BwSample {
    std::int64_t round;
    double bps;
  };
  std::vector<BwSample> bw_samples_;
  std::int64_t current_round_ = 0;

  // RTprop: windowed min over wall (sim) time.
  sim::WindowedMin rt_prop_filter_;
  sim::Time rt_prop_stamp_ = 0;  ///< when the current min was last matched

  // Full-pipe detection (STARTUP exit).
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // PROBE_BW gain cycling.
  static constexpr double kCycleGains[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
  int cycle_index_ = 0;
  sim::Time cycle_stamp_ = 0;

  // PROBE_RTT.
  sim::Time probe_rtt_done_ = -1;
  bool probe_rtt_round_done_ = false;

  double pacing_gain_;
  std::int64_t inflight_at_last_sent_ = 0;
  std::int64_t cwnd_before_probe_rtt_ = 0;
};

}  // namespace hvc::transport
