// FaultInjector: applies a validated FaultPlan to a channel::HvcSet by
// scheduling every fault transition on the simulator up front and driving
// the Link fault_* hooks at each edge. Flap events expand into their
// individual down/up sub-windows at construction, so the whole plan is a
// flat, finite list of windows — the sim always terminates.
//
// Observability: each transition is recorded in the steering audit log
// (policy "fault", reason tags like "fault:outage-start") so a run's
// decision trail shows *why* steering behavior changed mid-run, and
// blackout cost (bytes committed into a downed link, droptail drops while
// down) is accumulated per window and folded into the metrics registry on
// destruction ("fault.*" counters).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"

namespace hvc::fault {

/// One applied fault interval (flap events contribute several).
struct FaultWindow {
  FaultKind kind = FaultKind::kOutage;
  std::size_t channel = 0;
  FaultDir dir = FaultDir::kBoth;
  sim::Time start = 0;
  sim::Time end = 0;
  bool down = false;  ///< window takes the link(s) fully down

  // Kind parameters resolved for this window.
  double rate_scale = 1.0;
  sim::Duration extra_delay = 0;
  channel::LossConfig loss;
  std::uint64_t loss_seed = 0;

  // Blackout cost, measured over the window (down windows only):
  // bytes the sender committed into the dead link and droptail drops.
  std::int64_t committed_bytes = 0;
  std::int64_t dropped_packets = 0;
};

class FaultInjector {
 public:
  /// Validates the plan against `set` (throws std::invalid_argument) and
  /// schedules every transition. `set` must outlive the injector.
  FaultInjector(sim::Simulator& sim, channel::HvcSet& set, FaultPlan plan);

  /// Folds blackout counters into the metrics registry.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const std::vector<FaultWindow>& windows() const {
    return windows_;
  }

  /// Bytes enqueued into down link(s) during blackout windows so far.
  [[nodiscard]] std::int64_t blackout_committed_bytes() const;
  /// Droptail drops at down link(s) during blackout windows so far.
  [[nodiscard]] std::int64_t blackout_dropped_packets() const;

 private:
  void expand(const FaultEvent& e);
  void apply_start(std::size_t w);
  void apply_end(std::size_t w);
  void audit(const FaultWindow& w, const char* reason) const;
  /// Sum of (enqueued_bytes, dropped_queue_packets) across the window's
  /// affected link(s) — sampled at both edges to get per-window deltas.
  void sample(const FaultWindow& w, std::int64_t* enq, std::int64_t* drop);

  sim::Simulator& sim_;
  channel::HvcSet& set_;
  std::vector<FaultWindow> windows_;
  // Edge samples taken at window start, consumed at window end.
  std::vector<std::int64_t> enq_at_start_;
  std::vector<std::int64_t> drop_at_start_;
};

}  // namespace hvc::fault
