// Causal span layer with tail-based exemplar retention — the "why was
// THIS page slow" instrument (DESIGN.md §5.10).
//
// The tracer records packets, telemetry records series, the audit log
// records decisions; none of them can reconstruct the blocking chain of
// one slow page load at city scale, and full tracing at 10⁴–10⁶ users is
// memory-infeasible. A span *unit* is one user-visible unit of work (a
// page load, a video chunk, a frame): a tree of stages (dependency
// levels) each holding per-channel legs (object transfers). Workloads
// build units incrementally in a bounded per-user SpanUnitBuilder (the
// flight recorder: fixed stage/leg caps, overflow counted, O(1) memory
// per user) and offer() the finished tree with its headline sample.
//
// Retention is tail-based: the recorder keeps the full tree only when
// the sample lands at or above a configured quantile of the live
// stats::LogHistogram for that (cohort, metric) — the same exact-integer
// sketch the city cohorts use — plus a counter-hash deterministic
// reservoir of normal exemplars (keep when splitmix64(key_seed + n) hits
// a fixed residue; no RNG, no sampling-order sensitivity). Tracing cost
// is therefore O(exemplars), not O(packets), and the export is
// byte-identical across `-j` and `--shard/--merge` because every
// decision is a pure function of the per-run offer sequence.
//
// The critical-path decomposition is exact integer sim-time accounting:
// each stage's duration is leading propagation (the request RTT) plus
// its blocking leg's duration, and each leg's duration splits into named
// components (serialization = the alone-transfer time, queueing = the
// sharing-induced remainder, plus retransmission / reorder-wait /
// steering-wait / decode-wait where the workload can measure them). The
// per-component sums over a unit's stages equal the measured total to
// the nanosecond — `hvc_report --explain` prints the check.
//
// Same isolation contract as the tracer/audit log: one thread-local
// active() pointer (zero cost when no recorder is installed), sim-time-
// only records, and a ScopedSpanRecorder installer per run.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/units.hpp"
#include "stats/streaming.hpp"

namespace hvc::obs {

/// The named critical-path components (fixed vocabulary; a workload uses
/// the subset it can measure).
enum class SpanComp : std::uint8_t {
  kQueueing = 0,        ///< sharing/backlog-induced wait
  kSerialization,       ///< alone-transfer time at the channel rate
  kPropagation,         ///< RTT / one-way delays on the blocking chain
  kRetransmission,      ///< loss recovery (RTO/fast-retransmit) time
  kReorderWait,         ///< resequencing hold
  kSteeringWait,        ///< waiting on a steering/admission decision
  kDecodeWait,          ///< client-side decode/parse hold
};
inline constexpr int kSpanCompCount = 7;
[[nodiscard]] const char* span_comp_name(SpanComp c);

/// One channel leg: the transfer that (when critical) blocks its stage.
struct SpanLeg {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::int64_t bytes = 0;
  std::uint32_t slot = 0;          ///< object index within the stage
  const char* channel = "";        ///< static name ("embb", "urllc", …)
  const char* reason = "";         ///< steering/policy reason tag
  /// Exact decomposition in ns; sums to (t1 - t0) for the critical leg.
  std::array<std::int64_t, kSpanCompCount> parts{};
};

/// One stage of the blocking chain (a web dependency level, a chunk
/// fetch): leading propagation, then its legs; the last leg to finish is
/// the critical one.
struct SpanStage {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::int64_t prop_ns = 0;        ///< leading propagation (request RTT)
  const char* prop_channel = "";   ///< channel the propagation rides
  std::uint32_t legs = 0;          ///< legs opened in this stage
  SpanLeg crit;                    ///< the blocking leg (valid if legs > 0)
};

/// A completed unit of work offered for retention.
struct SpanUnit {
  const char* cohort = "";         ///< "web" | "video" | …
  const char* metric = "";         ///< "plt_ms" | "latency_ms" | …
  std::uint32_t user = 0;
  std::uint64_t seq = 0;           ///< per-user unit counter
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::int64_t total_ns = 0;       ///< the measured result, exact
  double value = 0;                ///< the headline sample (cohort units)
  std::vector<SpanStage> stages;
};

/// Bounded per-user flight recorder: builds one in-flight unit. Fixed
/// caps on stages and open legs; overflow is counted, never allocated.
class SpanUnitBuilder {
 public:
  static constexpr std::size_t kMaxStages = 32;
  static constexpr std::size_t kMaxOpenLegs = 64;

  [[nodiscard]] bool active() const { return active_; }

  void begin(const char* cohort, const char* metric, std::uint32_t user,
             sim::Time t0);
  /// Open a stage whose first `prop_ns` is propagation on `prop_channel`.
  void begin_stage(sim::Time t0, std::int64_t prop_ns,
                   const char* prop_channel);
  /// Open a leg; `ser_hint_ns` is the alone-transfer time at the chosen
  /// channel's rate (clamped to the observed duration on close).
  void leg_open(std::uint32_t slot, sim::Time t0, std::int64_t bytes,
                const char* channel, const char* reason,
                std::int64_t ser_hint_ns);
  /// Extra component time to charge on close (e.g. steering-wait).
  void leg_charge(std::uint32_t slot, SpanComp comp, std::int64_t ns);
  void leg_close(std::uint32_t slot, sim::Time t1);
  void end_stage(sim::Time t1);
  /// Close the unit. `total_ns` is the measured result; any slack versus
  /// the accumulated components lands in the last stage's queueing so
  /// the per-component sum is exact by construction.
  [[nodiscard]] SpanUnit finish(sim::Time t1, std::int64_t total_ns,
                                double value);
  void abort();

  [[nodiscard]] std::uint64_t truncated() const { return truncated_; }
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct OpenLeg {
    SpanLeg leg;
    std::int64_t ser_hint_ns = 0;
    bool open = false;
  };

  SpanUnit unit_;
  std::vector<OpenLeg> open_;      ///< current stage's in-flight legs
  std::uint64_t seq_ = 0;
  std::uint64_t truncated_ = 0;
  bool active_ = false;
  bool in_stage_ = false;
};

struct SpanConfig {
  double tail_quantile = 95.0;     ///< retain at/above this live quantile
  std::int64_t tail_budget = 16;   ///< top-K tail exemplars per metric key
  std::int64_t reservoir_budget = 8;
  std::int64_t reservoir_period = 64;  ///< keep ~every Nth unit
  std::int64_t warmup = 32;        ///< samples before the tail rule arms
  std::uint64_t seed = 0;          ///< keys the counter-hash reservoir
};

/// Per-run span recorder: owns the live histograms and the retained
/// exemplar sets. Install with ScopedSpanRecorder; hot paths check
/// SpanRecorder::active() (nullptr = spans off, one branch).
class SpanRecorder {
 public:
  SpanRecorder() = default;
  ~SpanRecorder() {
    if (active_ == this) active_ = nullptr;
  }
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  [[nodiscard]] static SpanRecorder* active() { return active_; }

  void enable(SpanConfig cfg = {});
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const SpanConfig& config() const { return cfg_; }

  /// Offer a completed unit; the retention rule decides whether the tree
  /// is kept. Always feeds the live histogram.
  void offer(SpanUnit&& unit);
  /// A unit died incomplete (its user departed); counted, never kept.
  void note_aborted() { ++aborted_; }
  void note_truncated(std::uint64_t n) { truncated_ += n; }

  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t retained() const;
  /// Memory held by retained exemplars + per-key histograms — the
  /// O(exemplars) accounting exported as city.span_bytes.
  [[nodiscard]] std::size_t span_bytes() const;

  /// One meta line, then one line per retained exemplar, ordered by
  /// (metric key, offer index). Byte-deterministic.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  friend class ScopedSpanRecorder;

  struct Kept {
    SpanUnit unit;
    std::uint64_t n = 0;          ///< offer index within the key
    const char* keep = "";        ///< "tail" | "reservoir"
  };
  struct MetricState {
    stats::LogHistogram hist;
    std::uint64_t offered = 0;
    std::uint64_t evicted = 0;
    std::uint64_t key_seed = 0;   ///< seed_mix(cfg.seed, fnv1a64(key))
    std::vector<Kept> tail;       ///< top-K by value
    std::vector<Kept> reservoir;  ///< oldest-out ring, insertion order
  };

  static thread_local SpanRecorder* active_;

  SpanConfig cfg_;
  std::map<std::string, MetricState> keys_;
  std::uint64_t offered_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t truncated_ = 0;
  bool enabled_ = false;
};

/// RAII installer, same contract as ScopedSteeringAuditLog: an enabled
/// recorder becomes the thread's active(); a disabled one masks any
/// outer recorder so sweep runs never cross-record.
class ScopedSpanRecorder {
 public:
  explicit ScopedSpanRecorder(SpanRecorder& rec);
  ~ScopedSpanRecorder();
  ScopedSpanRecorder(const ScopedSpanRecorder&) = delete;
  ScopedSpanRecorder& operator=(const ScopedSpanRecorder&) = delete;

 private:
  SpanRecorder* prev_active_;
};

}  // namespace hvc::obs
