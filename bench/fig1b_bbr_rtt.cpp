// Figure 1b: packet RTTs observed by BBR when running over DChannel
// steering. The paper's plot shows per-packet RTT oscillating between the
// URLLC floor (~5 ms) and the queue-inflated eMBB path (tens to ~170 ms)
// over the first ~15 s, with a drain around the 10 s PROBE_RTT.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("fig1b_bbr_rtt");
  bench::print_header("Figure 1b: BBR packet RTTs under DChannel steering");

  const auto r =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", sim::seconds(15));

  // 250 ms buckets of the per-ACK RTT series (mean per bucket), plus the
  // bucket min/max envelope, which is what the paper's scatter conveys.
  std::printf("%8s %10s %10s %10s\n", "t(s)", "meanRTT", "minRTT", "maxRTT");
  const auto& pts = r.rtt_ms.points();
  const sim::Duration bucket = sim::milliseconds(250);
  std::size_t i = 0;
  for (sim::Time t0 = 0; t0 < sim::seconds(15); t0 += bucket) {
    double sum = 0, mn = 1e18, mx = -1;
    int n = 0;
    while (i < pts.size() && pts[i].t < t0 + bucket) {
      sum += pts[i].value;
      mn = std::min(mn, pts[i].value);
      mx = std::max(mx, pts[i].value);
      ++n;
      ++i;
    }
    if (n > 0) {
      std::printf("%8.2f %10.1f %10.1f %10.1f\n", sim::to_seconds(t0), sum / n,
                  mn, mx);
    }
  }

  sim::Summary all;
  for (const auto& p : pts) all.add(p.value);
  std::printf("\noverall: n=%zu min=%.1f ms p50=%.1f ms max=%.1f ms\n",
              all.count(), all.min(), all.percentile(50), all.max());
  std::printf("goodput over 15 s: %.2f Mbps\n", r.goodput_bps / 1e6);
  std::printf(
      "\nShape check (paper): RTT swings between the URLLC floor and the\n"
      "queue-inflated eMBB value because packets keep switching channels;\n"
      "the polluted min-RTT makes BBR underestimate the BDP.\n");
  return 0;
}
