// Fixture: R4 (raw-new-delete) — seeded violations at lines 8 and 9.
// `= delete` on the copy constructor must NOT fire.
namespace fixture {

struct Holder {
  Holder() = default;
  Holder(const Holder&) = delete;  // not a violation
  int* p = new int(7);             // VIOLATION: raw new
  ~Holder() { delete p; }          // VIOLATION: raw delete
};

}  // namespace fixture
