// R9 clean battery: every write here is synchronized, thread-local, or
// not reachable from the sweep entry points at all. Zero findings.
namespace fx9d {

std::atomic<int> g_done;
thread_local int t_scratch = 0;
int g_cold = 0;
std::mutex g_mu;
int g_guarded = 0;

void fx9d_atomic_worker() { g_done = 1; }

void fx9d_tl_worker() { t_scratch += 2; }

void fx9d_locked_worker() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_guarded += 1;
}

void run_sweep() {
  fx9d_atomic_worker();
  fx9d_tl_worker();
  fx9d_locked_worker();
}

void fx9d_main_only() { g_cold = 7; }

}  // namespace fx9d
