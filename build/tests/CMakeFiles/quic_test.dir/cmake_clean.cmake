file(REMOVE_RECURSE
  "CMakeFiles/quic_test.dir/quic_test.cpp.o"
  "CMakeFiles/quic_test.dir/quic_test.cpp.o.d"
  "quic_test"
  "quic_test.pdb"
  "quic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
