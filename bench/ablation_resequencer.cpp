// Ablation: receiver-side resequencing (DChannel's deployment aid) vs
// sender-side adaptive RACK under cross-channel reordering. An
// under-provisioned resequencer *hides* reordering from the sender's
// adaptation and can do worse than no resequencer at all.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_resequencer");
  bench::print_header(
      "Ablation: resequencer hold vs CUBIC bulk goodput under steering");
  bench::print_row({"hold ms", "goodput Mbps", "retx", "rto"});

  for (const auto hold_ms : {0, 20, 40, 120, 250}) {
    auto cfg = core::ScenarioConfig::fig1();
    cfg.resequence_hold = sim::milliseconds(hold_ms);
    const auto r = core::run_bulk(cfg, "cubic", sim::seconds(30));
    bench::print_row({std::to_string(hold_ms),
                      bench::fmt(r.goodput_bps / 1e6, 2),
                      std::to_string(r.retransmissions),
                      std::to_string(r.rto_count)});
  }
  std::printf(
      "\nReading: with adaptive RACK at the sender, hold=0 is already\n"
      "competitive; small holds can suppress the reordering signal RACK\n"
      "adapts to while still leaking bursts, which is the worst of both.\n");
  return 0;
}
