#include "transport/connection.hpp"

namespace hvc::transport {

Connection::Connection(net::Node& client, net::Node& server, TcpConfig cfg)
    : client_(client), server_(server), cfg_(cfg) {
  const FlowPair c2s = make_flow_pair();
  const FlowPair s2c = make_flow_pair();
  c2s_sender_ =
      std::make_unique<TcpSender>(client, c2s, make_cca(cfg_.cca), cfg_);
  c2s_receiver_ = std::make_unique<TcpReceiver>(server, c2s, cfg_);
  s2c_sender_ =
      std::make_unique<TcpSender>(server, s2c, make_cca(cfg_.cca), cfg_);
  s2c_receiver_ = std::make_unique<TcpReceiver>(client, s2c, cfg_);
  syn_flow_ = net::next_flow_id();
  syn_ack_flow_ = net::next_flow_id();
}

void Connection::handshake(std::function<void()> ready) {
  if (established_) {
    if (ready) ready();
    return;
  }
  // SYN: client → server.
  server_.register_flow(syn_flow_, [this](net::PacketPtr) {
    server_.unregister_flow(syn_flow_);
    auto syn_ack = net::make_packet();
    syn_ack->flow = syn_ack_flow_;
    syn_ack->type = net::PacketType::kControl;
    syn_ack->size_bytes = net::kHeaderBytes;
    syn_ack->flow_priority = cfg_.flow_priority;
    server_.send(std::move(syn_ack));
  });
  // SYN-ACK: server → client.
  client_.register_flow(syn_ack_flow_,
                        [this, ready = std::move(ready)](net::PacketPtr) {
                          client_.unregister_flow(syn_ack_flow_);
                          established_ = true;
                          if (ready) ready();
                        });
  auto syn = net::make_packet();
  syn->flow = syn_flow_;
  syn->type = net::PacketType::kControl;
  syn->size_bytes = net::kHeaderBytes;
  syn->flow_priority = cfg_.flow_priority;
  client_.send(std::move(syn));
}

}  // namespace hvc::transport
