# Empty compiler generated dependencies file for table1_web_plt.
# This may be replaced when dependencies are built.
