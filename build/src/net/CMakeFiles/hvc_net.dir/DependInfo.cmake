
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/hvc_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/hvc_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/hvc_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/hvc_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/reorder.cpp" "src/net/CMakeFiles/hvc_net.dir/reorder.cpp.o" "gcc" "src/net/CMakeFiles/hvc_net.dir/reorder.cpp.o.d"
  "/root/repo/src/net/shim.cpp" "src/net/CMakeFiles/hvc_net.dir/shim.cpp.o" "gcc" "src/net/CMakeFiles/hvc_net.dir/shim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/hvc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/steer/CMakeFiles/hvc_steer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hvc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
