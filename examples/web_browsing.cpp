// Web browsing over HVCs with background traffic — the Table 1 scenario
// as a runnable demo. Loads a synthetic page under a chosen policy and
// prints a request waterfall summary plus the PLT.
//
//   ./build/examples/web_browsing [policy]
//     policy: embb-only | dchannel (default) | dchannel+prio
#include <cstdio>
#include <string>

#include "core/scenario.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

int main(int argc, char** argv) {
  using namespace hvc;
  const std::string policy = argc > 1 ? argv[1] : "dchannel";

  auto cfg = core::ScenarioConfig::traced(
      trace::FiveGProfile::kLowbandDriving, policy, sim::seconds(60), 42);
  if (policy.rfind("dchannel", 0) == 0) {
    const bool prio = policy == "dchannel+prio";
    cfg.up_factory = cfg.down_factory = [prio] {
      auto tuned = steer::DChannelConfig::web_tuned();
      tuned.use_flow_priority = prio;
      return std::make_unique<steer::DChannelPolicy>(tuned);
    };
  }
  core::Scenario sc(cfg);

  // Two background JSON flows (log upload + prefetch download).
  transport::TcpConfig bg_cfg;
  bg_cfg.annotate_app_info = true;
  bg_cfg.flow_priority = 1;
  app::web::BackgroundJsonFlow uploader(
      sc.client(), sc.server(), app::web::BackgroundJsonFlow::Kind::kUpload,
      5'000, bg_cfg);
  app::web::BackgroundJsonFlow downloader(
      sc.client(), sc.server(),
      app::web::BackgroundJsonFlow::Kind::kDownload, 10'000, bg_cfg);
  uploader.start();
  downloader.start();

  // One representative landing page.
  sim::Rng rng(7);
  const auto page =
      app::web::generate_page(app::web::PageKind::kLanding, 0, rng);
  std::printf("loading %s: %zu objects, %.0f kB total, %d origins, "
              "dependency depth %d, policy=%s\n",
              page.name.c_str(), page.objects.size(),
              static_cast<double>(page.total_bytes()) / 1000.0,
              page.origins(), page.depth(), policy.c_str());

  app::web::BrowserConfig browser;
  app::web::PageLoadSession session(sc.client(), sc.server(), page, browser,
                                    nullptr);
  sc.sim().at(sim::milliseconds(500), [&] { session.start(); });

  sim::Time last_report = 0;
  while (!session.finished() && sc.sim().now() < sim::seconds(30)) {
    sc.sim().run_for(sim::milliseconds(20));
    if (sc.sim().now() - last_report >= sim::milliseconds(200)) {
      last_report = sc.sim().now();
      std::printf("  t=%6.0f ms: %3d/%zu objects loaded\n",
                  sim::to_millis(sc.sim().now() - sim::milliseconds(500)),
                  session.objects_loaded(), page.objects.size());
    }
  }

  if (session.finished()) {
    const auto tt = session.transport_totals();
    std::printf("\nonLoad (PLT): %.1f ms | %lld packets, %lld "
                "retransmissions\n",
                sim::to_millis(session.plt()),
                static_cast<long long>(tt.packets_sent),
                static_cast<long long>(tt.retransmissions));
    std::printf("background transfers completed meanwhile: %lld up, %lld "
                "down\n",
                static_cast<long long>(uploader.transfers_completed()),
                static_cast<long long>(downloader.transfers_completed()));
  } else {
    std::printf("page did not finish within 30 s\n");
  }
  return 0;
}
