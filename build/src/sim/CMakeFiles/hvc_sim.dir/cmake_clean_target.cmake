file(REMOVE_RECURSE
  "libhvc_sim.a"
)
