#include "net/reorder.hpp"

namespace hvc::net {

void ReorderBuffer::accept(PacketPtr p) {
  // Only sequenced data benefits from resequencing; ACKs and control are
  // self-describing and the transport handles their arrival order.
  if (p->type != PacketType::kData) {
    downstream_(std::move(p));
    return;
  }

  FlowState& fs = flows_[p->flow];
  const std::uint64_t seq = p->tp.seq;
  const std::uint64_t end = seq + p->tp.len;

  if (!fs.initialized) {
    fs.initialized = true;
    fs.expected = seq;
  }

  if (seq <= fs.expected) {
    // In order (or a retransmission/duplicate): deliver and advance.
    if (end > fs.expected) fs.expected = end;
    ++stats_.passed_through;
    downstream_(std::move(p));
    release_ready(fs);
    return;
  }

  // Ahead of the expected point: hold for up to max_hold_.
  ++stats_.held;
  const FlowId flow = p->flow;
  fs.held.emplace(seq, std::move(p));
  fs.deadlines.emplace(seq, sim_.now() + max_hold_);
  sim_.after(max_hold_, [this, flow] { on_timeout(flow); });
}

void ReorderBuffer::release_ready(FlowState& fs) {
  auto it = fs.held.begin();
  while (it != fs.held.end() && it->first <= fs.expected) {
    PacketPtr p = std::move(it->second);
    const std::uint64_t end = p->tp.seq + p->tp.len;
    if (end > fs.expected) fs.expected = end;
    fs.deadlines.erase(it->first);
    it = fs.held.erase(it);
    ++stats_.released_by_gap_fill;
    downstream_(std::move(p));
    // Restart: delivering may have unlocked earlier-keyed packets.
    it = fs.held.begin();
  }
}

void ReorderBuffer::on_timeout(FlowId flow) {
  auto fit = flows_.find(flow);
  if (fit == flows_.end()) return;
  FlowState& fs = fit->second;
  const sim::Time now = sim_.now();

  // Release every held packet whose deadline has passed, advancing the
  // expected point over them (the gap is assumed lost on the slow path).
  while (!fs.held.empty()) {
    const auto seq = fs.held.begin()->first;
    const auto dit = fs.deadlines.find(seq);
    if (dit == fs.deadlines.end() || dit->second > now) break;
    PacketPtr p = std::move(fs.held.begin()->second);
    fs.held.erase(fs.held.begin());
    fs.deadlines.erase(seq);
    const std::uint64_t end = p->tp.seq + p->tp.len;
    if (end > fs.expected) fs.expected = end;
    ++stats_.released_by_timeout;
    downstream_(std::move(p));
  }
  release_ready(fs);
}

}  // namespace hvc::net
