#include "obs/summary.hpp"

namespace hvc::obs {

void flatten_summary(const sim::Summary& s, const std::string& prefix,
                     std::map<std::string, double>* out) {
  (*out)[prefix + ".count"] = static_cast<double>(s.count());
  if (s.empty()) return;
  (*out)[prefix + ".mean"] = s.mean();
  (*out)[prefix + ".p50"] = s.percentile(50);
  (*out)[prefix + ".p95"] = s.percentile(95);
  (*out)[prefix + ".p99"] = s.percentile(99);
  (*out)[prefix + ".max"] = s.max();
}

RepeatStats repeat_stats(const sim::Summary& s) {
  RepeatStats out;
  out.count = s.count();
  if (s.empty()) return out;
  out.median = s.percentile(50);
  out.iqr = s.percentile(75) - s.percentile(25);
  out.min = s.min();
  out.max = s.max();
  out.mean = s.mean();
  return out;
}

void flatten_repeat_stats(const sim::Summary& s, const std::string& prefix,
                          std::map<std::string, double>* out) {
  const RepeatStats r = repeat_stats(s);
  (*out)[prefix + ".median"] = r.median;
  (*out)[prefix + ".iqr"] = r.iqr;
  (*out)[prefix + ".min"] = r.min;
  (*out)[prefix + ".max"] = r.max;
  (*out)[prefix + ".mean"] = r.mean;
}

}  // namespace hvc::obs
