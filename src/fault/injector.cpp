#include "fault/injector.hpp"

#include <algorithm>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace hvc::fault {

namespace {

/// The audit reason tag for a window edge. Static strings, as the audit
/// contract requires (AuditRecord::reason is never owned).
const char* edge_reason(FaultKind kind, bool starting) {
  switch (kind) {
    case FaultKind::kOutage:
      return starting ? "fault:outage-start" : "fault:outage-end";
    case FaultKind::kRateCliff:
      return starting ? "fault:rate-cliff-start" : "fault:rate-cliff-end";
    case FaultKind::kGeBurst:
      return starting ? "fault:ge-burst-start" : "fault:ge-burst-end";
    case FaultKind::kDelaySpike:
      return starting ? "fault:delay-spike-start" : "fault:delay-spike-end";
    case FaultKind::kFlap:
      return starting ? "fault:flap-down" : "fault:flap-up";
  }
  return "fault:unknown";
}

template <typename Fn>
void for_each_link(channel::Channel& ch, FaultDir dir, Fn&& fn) {
  if (dir != FaultDir::kUplink) fn(ch.downlink());
  if (dir != FaultDir::kDownlink) fn(ch.uplink());
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, channel::HvcSet& set,
                             FaultPlan plan)
    : sim_(sim), set_(set) {
  plan.validate(set.size());
  for (const FaultEvent& e : plan.events) expand(e);
  enq_at_start_.assign(windows_.size(), 0);
  drop_at_start_.assign(windows_.size(), 0);
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    sim_.at(windows_[w].start, [this, w] { apply_start(w); });
    sim_.at(windows_[w].end, [this, w] { apply_end(w); });
  }
}

FaultInjector::~FaultInjector() {
  auto& reg = obs::MetricsRegistry::current();
  reg.counter("fault.windows_applied")
      .inc(static_cast<std::int64_t>(windows_.size()));
  reg.counter("fault.blackout_committed_bytes")
      .inc(blackout_committed_bytes());
  reg.counter("fault.blackout_dropped_packets")
      .inc(blackout_dropped_packets());
}

std::int64_t FaultInjector::blackout_committed_bytes() const {
  std::int64_t total = 0;
  for (const FaultWindow& w : windows_) {
    if (w.down) total += w.committed_bytes;
  }
  return total;
}

std::int64_t FaultInjector::blackout_dropped_packets() const {
  std::int64_t total = 0;
  for (const FaultWindow& w : windows_) {
    if (w.down) total += w.dropped_packets;
  }
  return total;
}

void FaultInjector::expand(const FaultEvent& e) {
  if (e.kind != FaultKind::kFlap) {
    FaultWindow w;
    w.kind = e.kind;
    w.channel = e.channel;
    w.dir = e.dir;
    w.start = e.start;
    w.end = e.end();
    w.down = e.kind == FaultKind::kOutage;
    w.rate_scale = e.rate_scale;
    w.extra_delay = e.extra_delay;
    w.loss = e.loss;
    w.loss_seed = e.loss_seed;
    windows_.push_back(w);
    return;
  }
  // Flap: one down sub-window per period. flap_seed (non-zero) jitters
  // each down span's length around its nominal value; the sequence is a
  // pure function of the seed, so the expansion is reproducible.
  const sim::Duration nominal_down = std::max<sim::Duration>(
      static_cast<sim::Duration>((1.0 - e.flap_up_fraction) *
                                 static_cast<double>(e.flap_period)),
      1);
  sim::Rng rng(e.flap_seed);
  for (sim::Time t = e.start; t < e.end(); t += e.flap_period) {
    sim::Duration down = nominal_down;
    if (e.flap_seed != 0) {
      down = std::max<sim::Duration>(
          static_cast<sim::Duration>(rng.uniform(0.5, 1.5) *
                                     static_cast<double>(nominal_down)),
          1);
    }
    down = std::min<sim::Duration>(down, e.flap_period - 1);
    FaultWindow w;
    w.kind = FaultKind::kFlap;
    w.channel = e.channel;
    w.dir = e.dir;
    w.start = t;
    w.end = std::min<sim::Time>(t + down, e.end());
    w.down = true;
    if (w.end > w.start) windows_.push_back(w);
  }
}

void FaultInjector::apply_start(std::size_t wi) {
  FaultWindow& w = windows_[wi];
  channel::Channel& ch = set_.at(w.channel);
  switch (w.kind) {
    case FaultKind::kOutage:
    case FaultKind::kFlap:
      for_each_link(ch, w.dir,
                    [](channel::Link& l) { l.fault_set_down(true); });
      break;
    case FaultKind::kRateCliff:
      for_each_link(ch, w.dir, [&w](channel::Link& l) {
        l.fault_set_rate_scale(w.rate_scale);
      });
      break;
    case FaultKind::kGeBurst: {
      // Distinct streams per link so down/up drop patterns decorrelate.
      std::uint64_t salt = 0;
      for_each_link(ch, w.dir, [&w, &salt](channel::Link& l) {
        l.fault_set_episode_loss(w.loss, w.loss_seed + salt++);
      });
      break;
    }
    case FaultKind::kDelaySpike:
      for_each_link(ch, w.dir, [&w](channel::Link& l) {
        l.fault_set_extra_delay(w.extra_delay);
      });
      break;
  }
  sample(w, &enq_at_start_[wi], &drop_at_start_[wi]);
  audit(w, edge_reason(w.kind, /*starting=*/true));
}

void FaultInjector::apply_end(std::size_t wi) {
  FaultWindow& w = windows_[wi];
  channel::Channel& ch = set_.at(w.channel);
  std::int64_t enq = 0;
  std::int64_t drop = 0;
  sample(w, &enq, &drop);
  w.committed_bytes = enq - enq_at_start_[wi];
  w.dropped_packets = drop - drop_at_start_[wi];
  switch (w.kind) {
    case FaultKind::kOutage:
    case FaultKind::kFlap:
      for_each_link(ch, w.dir,
                    [](channel::Link& l) { l.fault_set_down(false); });
      break;
    case FaultKind::kRateCliff:
      for_each_link(ch, w.dir,
                    [](channel::Link& l) { l.fault_set_rate_scale(1.0); });
      break;
    case FaultKind::kGeBurst:
      for_each_link(ch, w.dir,
                    [](channel::Link& l) { l.fault_clear_episode_loss(); });
      break;
    case FaultKind::kDelaySpike:
      for_each_link(ch, w.dir,
                    [](channel::Link& l) { l.fault_set_extra_delay(0); });
      break;
  }
  audit(w, edge_reason(w.kind, /*starting=*/false));
}

void FaultInjector::audit(const FaultWindow& w, const char* reason) const {
  auto* al = obs::SteeringAuditLog::active();
  if (al == nullptr) return;
  obs::AuditRecord rec;
  rec.at = sim_.now();
  rec.chosen = static_cast<std::uint8_t>(w.channel);
  rec.direction = w.dir == FaultDir::kDownlink ? obs::kDirDown
                  : w.dir == FaultDir::kUplink ? obs::kDirUp
                                               : obs::kNoDirection;
  rec.reason = reason;
  rec.policy = "fault";
  al->record(std::move(rec));
}

void FaultInjector::sample(const FaultWindow& w, std::int64_t* enq,
                           std::int64_t* drop) {
  *enq = 0;
  *drop = 0;
  for_each_link(set_.at(w.channel), w.dir, [&](channel::Link& l) {
    *enq += l.stats().enqueued_bytes;
    *drop += l.stats().dropped_queue_packets;
  });
}

}  // namespace hvc::fault
