// R11 seed: raw `new` inside a profiled (HVC_PROF_SCOPE) function.
namespace fx11a {

void fx11a_hot() {
  HVC_PROF_SCOPE(obs::prof::Hook::kFixture);
  int* p = new int(7);
  *p = 8;
}

}  // namespace fx11a
