// Cross-TU graphs for the semantic lint passes (built from the per-file
// summaries in index.hpp):
//
//   Index        flat repo-wide symbol tables (functions, globals,
//                containers, each indexed by unqualified name)
//   CallGraph    name-based call resolution + worker reachability /
//                bounded-depth closures (R9, R11)
//   IncludeGraph quoted-#include edges with suffix-based resolution and
//                reverse-dependent closure (hvc_lint --diff)
//
// Resolution is by *name*, not by type: a call `f(x)` links to every
// indexed function named `f`, with same-file definitions preferred when
// any exist. That over-approximates edges (overloads, shadowed names in
// other TUs) — safe for reachability-style rules, where an extra edge
// can only add a finding that an allow() then documents.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/index.hpp"

namespace hvc::lint {

/// Repo-wide symbol tables over a set of indexed files. Pointers borrow
/// from the TokenCache entries passed to build_index — keep the cache
/// alive for the Index's lifetime.
struct Index {
  std::vector<const TokenCache::FileData*> files;  ///< sorted by path
  std::map<std::string, std::vector<const FunctionSummary*>>
      functions_by_name;
  std::map<std::string, std::vector<const GlobalVar*>> globals_by_name;
  std::map<std::string, std::vector<const ContainerDecl*>>
      containers_by_name;
};

[[nodiscard]] Index build_index(
    const std::vector<const TokenCache::FileData*>& files);

/// Resolve `name` as seen from `file`: definitions in the same file win
/// (a fixture tree holds many unrelated `helper()`s; the local one is
/// the real callee), otherwise every definition of that name matches.
[[nodiscard]] std::vector<const FunctionSummary*> resolve_function(
    const Index& idx, const std::string& name, const std::string& file);

/// Resolve a global/static written as `name` (optionally `Qual::name`)
/// from function `fn`. Preference order: same-file + matching owner,
/// same-file, matching owner, any. Returns nullptr when nothing matches
/// (the write was to a member field or an unindexed name).
[[nodiscard]] const GlobalVar* resolve_global(const Index& idx,
                                              const std::string& name,
                                              const std::string& qualifier,
                                              const FunctionSummary& fn);

/// Resolve the container iterated as `name` inside `fn` (locals first,
/// then members of fn's class in the same file, then any same-file
/// declaration, then any). nullptr when unknown.
[[nodiscard]] const ContainerDecl* resolve_container(
    const Index& idx, const std::string& name, const FunctionSummary& fn);

class CallGraph {
 public:
  explicit CallGraph(const Index& idx) : idx_(idx) {}

  /// Every function reachable from `roots` through call edges (roots
  /// included). Cycle-safe BFS.
  [[nodiscard]] std::set<const FunctionSummary*> reachable(
      const std::vector<const FunctionSummary*>& roots) const;

  /// Functions within `depth` call-edges of `roots`, with their minimum
  /// distance (roots map to 0). depth 0 = just the roots.
  [[nodiscard]] std::map<const FunctionSummary*, int> within_depth(
      const std::vector<const FunctionSummary*>& roots, int depth) const;

  /// Direct callees of `fn` (resolved, deduplicated).
  [[nodiscard]] std::vector<const FunctionSummary*> callees(
      const FunctionSummary& fn) const;

 private:
  const Index& idx_;
};

/// The quoted-#include graph. An include `"lint/lint.hpp"` resolves to
/// the indexed file whose normalized path ends with `/lint/lint.hpp`
/// (or equals it) — the repo compiles with -I src, so suffix matching
/// against the indexed set is exact in practice.
class IncludeGraph {
 public:
  explicit IncludeGraph(
      const std::vector<const TokenCache::FileData*>& files);

  /// Files affected by a change to `changed`: the changed files
  /// themselves plus every transitive reverse-includer. Paths are
  /// matched by normalized suffix, so git-relative names ("src/x.hpp")
  /// match indexed names ("./src/x.hpp"). Cycle-safe.
  [[nodiscard]] std::set<std::string> affected(
      const std::vector<std::string>& changed) const;

  /// Resolved forward edges of one file (empty when none).
  [[nodiscard]] const std::vector<std::string>& includes_of(
      const std::string& path) const;

 private:
  std::vector<std::string> all_;  ///< every indexed path, normalized
  std::map<std::string, std::vector<std::string>> fwd_;
  std::map<std::string, std::vector<std::string>> rev_;
};

}  // namespace hvc::lint
