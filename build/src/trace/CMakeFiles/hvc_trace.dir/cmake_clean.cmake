file(REMOVE_RECURSE
  "CMakeFiles/hvc_trace.dir/gen5g.cpp.o"
  "CMakeFiles/hvc_trace.dir/gen5g.cpp.o.d"
  "CMakeFiles/hvc_trace.dir/trace.cpp.o"
  "CMakeFiles/hvc_trace.dir/trace.cpp.o.d"
  "CMakeFiles/hvc_trace.dir/tsn.cpp.o"
  "CMakeFiles/hvc_trace.dir/tsn.cpp.o.d"
  "libhvc_trace.a"
  "libhvc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
