# Empty dependencies file for hvc_core.
# This may be replaced when dependencies are built.
