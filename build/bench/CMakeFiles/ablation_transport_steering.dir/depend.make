# Empty dependencies file for ablation_transport_steering.
# This may be replaced when dependencies are built.
